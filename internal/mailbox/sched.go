package mailbox

import (
	"sync"
	"sync/atomic"
	"unsafe"
)

// Sched is the sharded worker scheduler that decouples goroutines from
// PEs. The previous runtime (and the channel-matrix engine) dedicated one
// goroutine to every PE, so a resident p-PE machine held p parked
// goroutine stacks — ~2–8 KB each, which dominates machine memory long
// before the O(p) mailboxes do (p = 131072 ≈ 0.25–1 GiB of stacks doing
// nothing between runs). Sched instead multiplexes the p PE bodies over
// w ≪ p shards, each a run queue over a contiguous rank range:
//
//   - w permanent workers, one per shard, started on the first Run and
//     kicked over buffered channels. A worker claims ranks off its
//     shard's queue in small batches (one atomic per popBatch ranks) and
//     runs each PE body inline on its own stack; a Run whose bodies
//     never block dispatches entirely on these w goroutines and
//     allocates nothing.
//   - A body may finish a call to exec in one of three ways. Returning
//     true means the rank is done. Returning false means the body
//     suspended itself as a continuation (comm.RunAsync): it armed its
//     mailbox and returned the worker to the scheduler, which simply
//     keeps driving — no goroutine parks at all. When the armed message
//     arrives, the box's notify callback calls Ready(rank) and the rank
//     is re-run (exec again, same bool protocol) from the global ready
//     queue. This is the path that keeps mid-run goroutine residency at
//     exactly w for continuation-scheduled workloads.
//   - A body that instead blocks inside exec (a legacy blocking Recv)
//     first calls WillPark. If the goroutine currently holds its shard's
//     driver role and the shard still has pending work, the role — and
//     the unrun remainder of the driver's claimed batch, spilled onto
//     the shard — is handed off to a permanent worker whose own shard is
//     drained, or, if all are busy, to a freshly spawned transient
//     goroutine, so the queue keeps draining while the body sleeps on
//     its mailbox condition variable. The parked body keeps its
//     goroutine (Go cannot suspend a stack any other way), but that
//     goroutine is transient: it exits as soon as the body finishes,
//     having lost its driver role.
//
// The resulting resident goroutine count — what a machine costs while it
// merely exists between runs — is exactly w, pinned by
// TestMailboxGoroutineCountResident in internal/comm; for continuation
// bodies the bound holds mid-run too (TestRunAsyncMidRunResidency).
// StateBytes reports the scheduler's own footprint so the machine-memory
// estimators stay honest.
//
// Concurrency contract: Run and Close are called from one coordinating
// goroutine at a time, and exec must not panic (wrap bodies with recover
// at the call site). WillPark is called only from inside exec, on the
// goroutine running that rank. Ready is called from any goroutine, but
// only for a rank whose exec previously returned false — and only once
// per suspension.
type Sched struct {
	shards []shard
	// driverOf[rank] is the shard index whose driver role the goroutine
	// running rank currently holds, or -1. Only ever accessed by the
	// goroutine running that rank: the driver sets it before exec, WillPark
	// clears it on hand-off, the driver reads it after exec to learn
	// whether it is still driving. A suspended body (exec false) leaves it
	// untouched — the resuming worker overwrites it before re-running, and
	// the box-lock/ready-lock chain orders that write after ours.
	driverOf []int32
	// remHi[rank] is the exclusive end of the claimed-but-unstarted batch
	// remainder behind the body currently running rank (rank+1 ≤ remainder
	// < remHi). WillPark spills it so a hand-off never strands claimed
	// ranks. Same single-goroutine access discipline as driverOf.
	remHi []int32
	// kick[i] (buffered, cap 1) starts permanent worker i on its own
	// shard; work hands a parked driver's shard to whichever permanent
	// worker is between assignments. work is unbuffered: a send succeeds
	// only if a worker is actually parked in receive, so hand-off never
	// blocks (transient spawn on the miss) and never strands a role.
	kick []chan struct{}
	work chan int32
	// The ready queue of resumed continuation ranks: intrusive FIFOs
	// threaded through readyNext, drained by whichever driver or idle
	// worker sees it first. readyCh (buffered, cap w) carries coalesced
	// wake-ups for workers parked between assignments. In the default
	// sharded mode each shard owns a ready list (head/tail/mutex in the
	// shard, shardOf maps rank → shard) so concurrent-query resume
	// storms from many producer threads spread over w mutexes instead
	// of serializing on one; readyCount stays global, so the duty
	// invariant — count > 0 means a token is pending or a goroutine is
	// on draining duty — is unchanged from the global-queue mode, which
	// remains selectable (NewSchedReady) as the A/B reference.
	sharded    bool
	shardOf    []int32
	readyMu    sync.Mutex
	readyHead  int32
	readyTail  int32
	readyNext  []int32
	readyCount atomic.Int32
	readyCh    chan struct{}
	// wg counts PE bodies still open in the current Run.
	wg      sync.WaitGroup
	exec    func(rank int) bool
	started bool
	// popBatch is the batch size of cursor claims (SetPopBatch; default
	// defaultPopBatch). Read-only once the first Run has started.
	popBatch int32

	closeOnce sync.Once
}

// defaultPopBatch is the number of ranks a driver claims per cursor
// atomic: the hand-off churn constant. A parked driver's unrun remainder
// is spilled (see WillPark), so batching never strands ranks behind a
// sleeping body. Configurable per scheduler via SetPopBatch.
const defaultPopBatch = 8

// shard is one run queue: the contiguous rank range [lo, hi), the cursor
// of the next rank to claim, and the spill list of batch remainders
// parked drivers left behind. The cursor is atomic because drivers
// overlap run boundaries: a driver that has just finished its shard's
// last body (and released the run's WaitGroup) re-checks the cursor
// while the coordinator may already be resetting it for the next run —
// and a hand-off can give a shard a second driver while such a straggler
// is still looping. Atomic fetch-add pops make every interleaving safe:
// each batch is claimed exactly once, and a straggler that claims ranks
// of the new run simply becomes one of its drivers (its cursor load
// orders it after the coordinator's exec/WaitGroup writes).
type shard struct {
	lo, hi int
	next   atomic.Int32
	mu     sync.Mutex
	spill  []span
	spillN atomic.Int32
	// The shard's ready list (sharded mode): resumed ranks in [lo, hi),
	// threaded through the scheduler's shared readyNext array. Guarded
	// by rMu, separate from mu so resume storms never contend with
	// spill traffic.
	rMu          sync.Mutex
	rHead, rTail int32
}

// span is a half-open rank interval [lo, hi) of claimed, unstarted ranks.
type span struct{ lo, hi int32 }

func (sh *shard) pushSpill(sp span) {
	sh.mu.Lock()
	sh.spill = append(sh.spill, sp)
	sh.spillN.Store(int32(len(sh.spill)))
	sh.mu.Unlock()
}

func (sh *shard) popSpill() (span, bool) {
	sh.mu.Lock()
	n := len(sh.spill)
	if n == 0 {
		sh.mu.Unlock()
		return span{}, false
	}
	sp := sh.spill[n-1]
	sh.spill = sh.spill[:n-1]
	sh.spillN.Store(int32(n - 1))
	sh.mu.Unlock()
	return sp, true
}

// NewSched creates a scheduler for p ranks over w shards (clamped to
// 1 ≤ w ≤ p) with per-shard ready queues. No goroutines are started
// until the first Run.
func NewSched(p, w int) *Sched { return NewSchedReady(p, w, true) }

// NewSchedReady is NewSched with the ready-queue layout explicit:
// sharded selects per-shard ready lists (the default), false the single
// global list — kept as the contention A/B reference for the serving
// benchmark.
func NewSchedReady(p, w int, sharded bool) *Sched {
	if w < 1 {
		w = 1
	}
	if w > p {
		w = p
	}
	sc := &Sched{
		shards:    make([]shard, w),
		driverOf:  make([]int32, p),
		remHi:     make([]int32, p),
		sharded:   sharded,
		readyNext: make([]int32, p),
		readyHead: -1,
		readyTail: -1,
		kick:      make([]chan struct{}, w),
		work:      make(chan int32),
		readyCh:   make(chan struct{}, w),
		popBatch:  defaultPopBatch,
	}
	for i := range sc.shards {
		sc.shards[i].lo = i * p / w
		sc.shards[i].hi = (i + 1) * p / w
		sc.shards[i].next.Store(int32(sc.shards[i].hi)) // empty until Run
		sc.shards[i].rHead = -1
		sc.shards[i].rTail = -1
		sc.kick[i] = make(chan struct{}, 1)
	}
	for i := range sc.driverOf {
		sc.driverOf[i] = -1
	}
	if sharded {
		sc.shardOf = make([]int32, p)
		for i := range sc.shards {
			for r := sc.shards[i].lo; r < sc.shards[i].hi; r++ {
				sc.shardOf[r] = int32(i)
			}
		}
	}
	return sc
}

// Workers returns the shard count w.
func (sc *Sched) Workers() int { return len(sc.shards) }

// SetPopBatch sets the number of ranks a driver claims per cursor atomic
// (clamped to ≥ 1; the default is 8). Larger batches amortize the cursor
// atomic but lengthen the remainder a parking body must spill; results
// and metering are independent of the value — it is a host-side
// scheduling constant only. Must be called before the first Run.
func (sc *Sched) SetPopBatch(n int) {
	if n < 1 {
		n = 1
	}
	sc.popBatch = int32(n)
}

// Run executes exec(rank) for every rank and blocks until every rank is
// done. exec reports whether the rank completed: false means the body
// suspended itself (after arming its mailbox) and will be re-executed —
// possibly on a different goroutine — once Ready(rank) is called. A rank
// that blocks instead hands its shard to another goroutine (see
// WillPark), so queued ranks never wait on a parked one.
func (sc *Sched) Run(exec func(rank int) bool) {
	sc.exec = exec
	sc.wg.Add(len(sc.driverOf))
	for i := range sc.shards {
		sc.shards[i].next.Store(int32(sc.shards[i].lo))
	}
	if !sc.started {
		sc.started = true
		for i := range sc.kick {
			go sc.worker(sc.kick[i], int32(i))
		}
	}
	for i := range sc.kick {
		sc.kick[i] <- struct{}{}
	}
	sc.wg.Wait()
	sc.exec = nil
}

// Ready re-enqueues a suspended rank whose awaited message has arrived
// (the mailbox notify callback). Safe from any goroutine; the rank is
// picked up by an active driver between bodies or by an idle worker via
// readyCh.
func (sc *Sched) Ready(rank int) {
	if sc.sharded {
		sh := &sc.shards[sc.shardOf[rank]]
		sh.rMu.Lock()
		sc.readyNext[rank] = -1
		if sh.rTail >= 0 {
			sc.readyNext[sh.rTail] = int32(rank)
		} else {
			sh.rHead = int32(rank)
		}
		sh.rTail = int32(rank)
		sc.readyCount.Add(1)
		sh.rMu.Unlock()
	} else {
		sc.readyMu.Lock()
		sc.readyNext[rank] = -1
		if sc.readyTail >= 0 {
			sc.readyNext[sc.readyTail] = int32(rank)
		} else {
			sc.readyHead = int32(rank)
		}
		sc.readyTail = int32(rank)
		sc.readyCount.Add(1)
		sc.readyMu.Unlock()
	}
	select {
	case sc.readyCh <- struct{}{}:
	default:
		// readyCh full: w wake-ups are already pending, and every waking
		// worker drains the queue to empty before re-parking.
	}
}

// popReady dequeues one resumed rank, or -1. The atomic count makes the
// empty check lock-free (drivers poll it between bodies). pref is the
// calling driver's shard (-1: none): in sharded mode its own ready list
// is tried first, then the others round-robin — work stealing, so a
// resume never waits on the locality preference. A pop may return -1
// while readyCount is transiently positive (a push landing behind the
// scan); the offDuty hand-off backstop covers that window exactly as it
// covers the equivalent global-mode race.
func (sc *Sched) popReady(pref int32) int {
	if sc.readyCount.Load() == 0 {
		return -1
	}
	if !sc.sharded {
		sc.readyMu.Lock()
		r := sc.readyHead
		if r < 0 {
			sc.readyMu.Unlock()
			return -1
		}
		sc.readyHead = sc.readyNext[r]
		if sc.readyHead < 0 {
			sc.readyTail = -1
		}
		sc.readyCount.Add(-1)
		sc.readyMu.Unlock()
		return int(r)
	}
	w := int32(len(sc.shards))
	if pref < 0 {
		pref = 0
	}
	for off := int32(0); off < w; off++ {
		sh := &sc.shards[(pref+off)%w]
		sh.rMu.Lock()
		r := sh.rHead
		if r < 0 {
			sh.rMu.Unlock()
			continue
		}
		sh.rHead = sc.readyNext[r]
		if sh.rHead < 0 {
			sh.rTail = -1
		}
		sc.readyCount.Add(-1)
		sh.rMu.Unlock()
		return int(r)
	}
	return -1
}

// worker is a permanent scheduler goroutine: kicked once per Run for its
// own shard, available for driver hand-offs from parked bodies in any
// shard, and woken by readyCh to resume suspended continuation bodies —
// all between assignments.
func (sc *Sched) worker(kick chan struct{}, own int32) {
	for {
		select {
		case _, ok := <-kick:
			if !ok {
				return
			}
			sc.drive(own)
		case s, ok := <-sc.work:
			if !ok {
				return
			}
			if s < 0 {
				// Ready-queue hand-off from a parking role-less body (see
				// WillPark): there is no shard to drive, only resumes.
				sc.drainReady()
			} else {
				sc.drive(s)
			}
		case <-sc.readyCh:
			sc.drainReady()
		}
	}
}

// drainReady runs resumed ranks until every ready queue is empty.
func (sc *Sched) drainReady() {
	defer sc.offDuty()
	for {
		r := sc.popReady(-1)
		if r < 0 {
			return
		}
		sc.runOne(-1, r, int32(r)+1)
	}
}

// offDuty runs as a goroutine leaves scheduling duty — a transient
// exiting, or a worker about to return to its select loop. If resumed
// ranks are waiting, hand the draining duty off: the readyCh token that
// accompanied their Ready is only consumable by a worker parked in
// select, and every permanent worker may be blocked inside a body whose
// progress depends on exactly those ranks (found by review: a transient
// finishing a formerly-parked body exited here while the last Ready of
// the run sat unserviced — deadlock at w = 1). A spurious hand-off when
// another goroutine drains the queue first is benign.
func (sc *Sched) offDuty() {
	if sc.readyCount.Load() > 0 {
		sc.handOff(-1)
	}
}

// handOff gives shard s's driver role — or, for s < 0, the ready-queue
// draining duty — to a permanent worker parked between assignments, or
// spawns a transient goroutine when none is. Never blocks.
func (sc *Sched) handOff(s int32) {
	select {
	case sc.work <- s:
	default:
		if s < 0 {
			go sc.drainReady()
		} else {
			go sc.drive(s)
		}
	}
}

// drive runs shard s's pending work — resumed continuation ranks first,
// then spilled batch remainders, then fresh cursor batches — until
// nothing is left or the running body hands the driver role away.
func (sc *Sched) drive(s int32) {
	defer sc.offDuty()
	sh := &sc.shards[s]
	for {
		if r := sc.popReady(s); r >= 0 {
			if !sc.runOne(s, r, int32(r)+1) {
				return
			}
			continue
		}
		if sh.spillN.Load() > 0 {
			if sp, ok := sh.popSpill(); ok {
				if !sc.runSpan(s, sp) {
					return
				}
				continue
			}
		}
		pb := sc.popBatch
		lo := int(sh.next.Add(pb)-pb)
		if lo >= sh.hi {
			return
		}
		hi := min(lo+int(pb), sh.hi)
		if !sc.runSpan(s, span{int32(lo), int32(hi)}) {
			return
		}
	}
}

// runSpan runs the claimed ranks of sp in order, reporting whether the
// goroutine still holds the driver role afterwards. When a body parks,
// its WillPark spills the unrun remainder (which runOne advertised via
// remHi), so the hand-off recipient picks it up.
func (sc *Sched) runSpan(s int32, sp span) bool {
	for i := sp.lo; i < sp.hi; i++ {
		if !sc.runOne(s, int(i), sp.hi) {
			return false
		}
	}
	return true
}

// runOne executes rank i's body while holding shard role s (-1 when the
// caller holds no role, e.g. drainReady), with remHi the exclusive end
// of the caller's claimed batch behind i. Returns whether the caller
// still holds its driver role. A suspended body (exec false) must leave
// scheduler state alone: the resuming goroutine may already be running
// this rank concurrently with our return.
func (sc *Sched) runOne(s int32, i int, remHi int32) (keepRole bool) {
	sc.driverOf[i] = s
	sc.remHi[i] = remHi
	if !sc.exec(i) {
		return true // suspended: rank re-runs via Ready; wg stays open
	}
	lost := s >= 0 && sc.driverOf[i] < 0
	sc.driverOf[i] = -1
	sc.wg.Done()
	return !lost
}

// WillPark declares that the body running rank is about to block waiting
// for a message. If that body holds its shard's driver role, the unrun
// remainder of its claimed batch is spilled and — if the shard has any
// pending work — the role is handed off so the queue keeps draining;
// otherwise it is a cheap no-op. Must be called from inside exec on the
// goroutine running rank. Calling it and then not blocking (the message
// arrived meanwhile) is harmless — the role is simply gone.
func (sc *Sched) WillPark(rank int) {
	s := sc.driverOf[rank]
	if s < 0 {
		// A role-less body (resumed via drainReady) about to block: it
		// cannot strand a shard queue, but it may be the only goroutine
		// positioned to service the ready queue — and the rank that would
		// unblock it can already be sitting there (its Ready fired before
		// this body parked; after the park, only running bodies create new
		// Ready events). Hand the draining duty off so resumes keep
		// flowing.
		sc.offDuty()
		return
	}
	sc.driverOf[rank] = -1
	sh := &sc.shards[s]
	if hi := sc.remHi[rank]; int32(rank)+1 < hi {
		sh.pushSpill(span{int32(rank) + 1, hi})
	}
	// A stale read here only costs a spurious hand-off (the receiving
	// worker finds the queues empty); batches are claimed atomically in
	// drive and spans popped under the shard lock.
	if sh.spillN.Load() > 0 || int(sh.next.Load()) < sh.hi || sc.readyCount.Load() > 0 {
		sc.handOff(s)
	}
}

// Close releases the permanent worker goroutines. Must not overlap a
// Run; Run must not be called afterwards. Idempotent.
func (sc *Sched) Close() {
	sc.closeOnce.Do(func() {
		close(sc.work)
		for _, c := range sc.kick {
			close(c)
		}
	})
}

// StateBytes estimates the scheduler's resident memory for p ranks and w
// shards: shard, kick-channel, driver/remainder/ready bookkeeping plus
// the w permanent goroutine stacks. Goroutine stacks start at ~8 KB of
// reserved address space; the estimate charges that in full so
// machine-memory claims err high.
func StateBytes(p, w int) int64 {
	if w > p {
		w = p
	}
	const stackBytes = 8 << 10
	const kickBytes = 96 + 16     // hchan + slot + slice entry
	const perRank = 4 + 4 + 4 + 4 // driverOf + remHi + readyNext + shardOf
	return int64(w)*(int64(unsafe.Sizeof(shard{}))+kickBytes+stackBytes) + int64(p)*perRank
}
