package mailbox

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPerSenderFIFO(t *testing.T) {
	b := New()
	// Two interleaved senders; per-sender order must survive demux.
	for i := 0; i < 3; i++ {
		b.Put(Msg{Src: 1, Tag: uint64(10 + i)})
		b.Put(Msg{Src: 2, Tag: uint64(20 + i)})
	}
	for i := 0; i < 3; i++ {
		m, ok := b.TryTake(2)
		if !ok || m.Tag != uint64(20+i) {
			t.Fatalf("from 2 step %d: got %+v ok=%v", i, m, ok)
		}
	}
	for i := 0; i < 3; i++ {
		m, ok := b.TryTake(1)
		if !ok || m.Tag != uint64(10+i) {
			t.Fatalf("from 1 step %d: got %+v ok=%v", i, m, ok)
		}
	}
	if _, ok := b.TryTake(1); ok {
		t.Fatal("box should be empty")
	}
}

func TestTakeBlocksUntilPut(t *testing.T) {
	b := New()
	done := make(chan Msg)
	go func() {
		m, ok := b.Take(3)
		if !ok {
			t.Error("Take interrupted unexpectedly")
		}
		done <- m
	}()
	// Traffic from other senders must not satisfy (or wedge) the waiter.
	b.Put(Msg{Src: 1, Tag: 100})
	select {
	case <-done:
		t.Fatal("Take returned a message from the wrong sender")
	case <-time.After(10 * time.Millisecond):
	}
	b.Put(Msg{Src: 3, Tag: 7})
	m := <-done
	if m.Tag != 7 || m.Src != 3 {
		t.Fatalf("got %+v", m)
	}
	if m2, ok := b.TryTake(1); !ok || m2.Tag != 100 {
		t.Fatalf("stashed message lost: %+v ok=%v", m2, ok)
	}
}

func TestInterruptWakesConsumer(t *testing.T) {
	b := New()
	done := make(chan bool)
	go func() {
		_, ok := b.Take(0)
		done <- ok
	}()
	time.Sleep(5 * time.Millisecond)
	b.Interrupt()
	if ok := <-done; ok {
		t.Fatal("interrupted Take reported ok")
	}
	// After Reset the box is usable again.
	b.Reset()
	b.Put(Msg{Src: 0, Tag: 1})
	if _, ok := b.Take(0); !ok {
		t.Fatal("Take failed after Reset")
	}
}

func TestResetDrains(t *testing.T) {
	b := New()
	for i := 0; i < 5; i++ {
		b.Put(Msg{Src: i, Data: make([]byte, 8)})
	}
	if b.Pending() != 5 {
		t.Fatalf("Pending = %d", b.Pending())
	}
	b.Reset()
	if b.Pending() != 0 {
		t.Fatalf("Pending after Reset = %d", b.Pending())
	}
}

// TestConcurrentSenders is the -race stress: many producers, one
// consumer, per-sender sequence numbers must arrive in order.
func TestConcurrentSenders(t *testing.T) {
	const senders, msgs = 8, 200
	b := New()
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < msgs; i++ {
				b.Put(Msg{Src: s, Tag: uint64(i)})
			}
		}(s)
	}
	got := make([]int, senders)
	for n := 0; n < senders*msgs; n++ {
		// Round-robin across senders exercises both stash and wait paths.
		src := n % senders
		m, ok := b.Take(src)
		if !ok {
			t.Fatal("unexpected interrupt")
		}
		if int(m.Tag) != got[src] {
			t.Fatalf("sender %d: got seq %d, want %d", src, m.Tag, got[src])
		}
		got[src]++
	}
	wg.Wait()
}

func TestSchedRunAllRanks(t *testing.T) {
	for _, tc := range []struct{ p, w int }{{16, 16}, {16, 4}, {16, 1}, {5, 3}, {1, 8}} {
		sc := NewSched(tc.p, tc.w)
		hits := make([]atomic.Int32, tc.p)
		for round := 0; round < 3; round++ {
			sc.Run(func(rank int) { hits[rank].Add(1) })
		}
		for r := range hits {
			if got := hits[r].Load(); got != 3 {
				t.Errorf("p=%d w=%d: rank %d ran %d times, want 3", tc.p, tc.w, r, got)
			}
		}
		sc.Close()
	}
}

func TestSchedWorkersClamped(t *testing.T) {
	if got := NewSched(4, 64).Workers(); got != 4 {
		t.Errorf("w clamped to %d, want 4", got)
	}
	if got := NewSched(64, 0).Workers(); got != 1 {
		t.Errorf("w clamped to %d, want 1", got)
	}
}

func TestSchedCloseReleasesGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	sc := NewSched(256, 4)
	sc.Run(func(rank int) {})
	sc.Close()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Errorf("goroutines not released: before=%d after=%d", before, runtime.NumGoroutine())
}

// TestSchedResidentGoroutinesBounded pins the tentpole claim at the
// scheduler layer: between runs, a scheduler for p ranks keeps at most w
// idle goroutines, no matter how many bodies parked during the run.
func TestSchedResidentGoroutinesBounded(t *testing.T) {
	const p, w = 2048, 4
	before := runtime.NumGoroutine()
	boxes := make([]*Box, p)
	for i := range boxes {
		boxes[i] = New()
	}
	sc := NewSched(p, w)
	defer sc.Close()
	// A ring in which every rank first waits for its predecessor: rank 0
	// unblocks the cascade, so nearly every body parks once.
	for round := 0; round < 3; round++ {
		sc.Run(func(rank int) {
			if rank > 0 {
				if _, ok := boxes[rank].TryTake(rank - 1); !ok {
					sc.WillPark(rank)
					if _, ok := boxes[rank].Take(rank - 1); !ok {
						t.Error("unexpected interrupt")
					}
				}
			}
			if rank+1 < p {
				boxes[rank+1].Put(Msg{Src: rank})
			}
		})
	}
	deadline := time.Now().Add(2 * time.Second)
	var after int
	for time.Now().Before(deadline) {
		if after = runtime.NumGoroutine(); after <= before+w+1 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Errorf("resident goroutines not O(w): before=%d after=%d (w=%d, p=%d)", before, after, w, p)
}

// TestSchedParkUnparkStress is the -race stress for the driver hand-off:
// many ranks over few shards, every body blocking on a pseudo-random
// partner so driver roles bounce between goroutines, repeated across
// runs so spares are spawned, reused, and retired.
func TestSchedParkUnparkStress(t *testing.T) {
	const p, w, rounds = 64, 3, 20
	boxes := make([]*Box, p)
	for i := range boxes {
		boxes[i] = New()
	}
	sc := NewSched(p, w)
	defer sc.Close()
	for round := 0; round < rounds; round++ {
		shift := 1 + round%(p-1)
		sc.Run(func(rank int) {
			dst := (rank + shift) % p
			src := (rank - shift + p) % p
			boxes[dst].Put(Msg{Src: rank, Tag: uint64(round)})
			m, ok := boxes[rank].TryTake(src)
			if !ok {
				sc.WillPark(rank)
				m, ok = boxes[rank].Take(src)
			}
			if !ok || m.Tag != uint64(round) {
				t.Errorf("round %d rank %d: got %+v ok=%v", round, rank, m, ok)
			}
		})
	}
}
