package mailbox

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPerSenderFIFO(t *testing.T) {
	b := New()
	// Two interleaved senders; per-sender order must survive demux.
	for i := 0; i < 3; i++ {
		b.Put(Msg{Src: 1, Tag: uint64(10 + i)})
		b.Put(Msg{Src: 2, Tag: uint64(20 + i)})
	}
	for i := 0; i < 3; i++ {
		m, ok := b.TryTake(2)
		if !ok || m.Tag != uint64(20+i) {
			t.Fatalf("from 2 step %d: got %+v ok=%v", i, m, ok)
		}
	}
	for i := 0; i < 3; i++ {
		m, ok := b.TryTake(1)
		if !ok || m.Tag != uint64(10+i) {
			t.Fatalf("from 1 step %d: got %+v ok=%v", i, m, ok)
		}
	}
	if _, ok := b.TryTake(1); ok {
		t.Fatal("box should be empty")
	}
}

func TestTakeBlocksUntilPut(t *testing.T) {
	b := New()
	done := make(chan Msg)
	go func() {
		m, ok := b.Take(3)
		if !ok {
			t.Error("Take interrupted unexpectedly")
		}
		done <- m
	}()
	// Traffic from other senders must not satisfy (or wedge) the waiter.
	b.Put(Msg{Src: 1, Tag: 100})
	select {
	case <-done:
		t.Fatal("Take returned a message from the wrong sender")
	case <-time.After(10 * time.Millisecond):
	}
	b.Put(Msg{Src: 3, Tag: 7})
	m := <-done
	if m.Tag != 7 || m.Src != 3 {
		t.Fatalf("got %+v", m)
	}
	if m2, ok := b.TryTake(1); !ok || m2.Tag != 100 {
		t.Fatalf("stashed message lost: %+v ok=%v", m2, ok)
	}
}

func TestInterruptWakesConsumer(t *testing.T) {
	b := New()
	done := make(chan bool)
	go func() {
		_, ok := b.Take(0)
		done <- ok
	}()
	time.Sleep(5 * time.Millisecond)
	b.Interrupt()
	if ok := <-done; ok {
		t.Fatal("interrupted Take reported ok")
	}
	// After Reset the box is usable again.
	b.Reset()
	b.Put(Msg{Src: 0, Tag: 1})
	if _, ok := b.Take(0); !ok {
		t.Fatal("Take failed after Reset")
	}
}

func TestResetDrains(t *testing.T) {
	b := New()
	for i := 0; i < 5; i++ {
		b.Put(Msg{Src: i, Data: make([]byte, 8)})
	}
	if b.Pending() != 5 {
		t.Fatalf("Pending = %d", b.Pending())
	}
	b.Reset()
	if b.Pending() != 0 {
		t.Fatalf("Pending after Reset = %d", b.Pending())
	}
}

// TestConcurrentSenders is the -race stress: many producers, one
// consumer, per-sender sequence numbers must arrive in order.
func TestConcurrentSenders(t *testing.T) {
	const senders, msgs = 8, 200
	b := New()
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < msgs; i++ {
				b.Put(Msg{Src: s, Tag: uint64(i)})
			}
		}(s)
	}
	got := make([]int, senders)
	for n := 0; n < senders*msgs; n++ {
		// Round-robin across senders exercises both stash and wait paths.
		src := n % senders
		m, ok := b.Take(src)
		if !ok {
			t.Fatal("unexpected interrupt")
		}
		if int(m.Tag) != got[src] {
			t.Fatalf("sender %d: got seq %d, want %d", src, m.Tag, got[src])
		}
		got[src]++
	}
	wg.Wait()
}

func TestSchedRunAllRanks(t *testing.T) {
	for _, tc := range []struct{ p, w int }{{16, 16}, {16, 4}, {16, 1}, {5, 3}, {1, 8}} {
		sc := NewSched(tc.p, tc.w)
		hits := make([]atomic.Int32, tc.p)
		for round := 0; round < 3; round++ {
			sc.Run(func(rank int) bool { hits[rank].Add(1); return true })
		}
		for r := range hits {
			if got := hits[r].Load(); got != 3 {
				t.Errorf("p=%d w=%d: rank %d ran %d times, want 3", tc.p, tc.w, r, got)
			}
		}
		sc.Close()
	}
}

func TestSchedWorkersClamped(t *testing.T) {
	if got := NewSched(4, 64).Workers(); got != 4 {
		t.Errorf("w clamped to %d, want 4", got)
	}
	if got := NewSched(64, 0).Workers(); got != 1 {
		t.Errorf("w clamped to %d, want 1", got)
	}
}

func TestSchedCloseReleasesGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	sc := NewSched(256, 4)
	sc.Run(func(rank int) bool { return true })
	sc.Close()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Errorf("goroutines not released: before=%d after=%d", before, runtime.NumGoroutine())
}

// TestSchedResidentGoroutinesBounded pins the tentpole claim at the
// scheduler layer: between runs, a scheduler for p ranks keeps at most w
// idle goroutines, no matter how many bodies parked during the run.
func TestSchedResidentGoroutinesBounded(t *testing.T) {
	const p, w = 2048, 4
	before := runtime.NumGoroutine()
	boxes := make([]*Box, p)
	for i := range boxes {
		boxes[i] = New()
	}
	sc := NewSched(p, w)
	defer sc.Close()
	// A ring in which every rank first waits for its predecessor: rank 0
	// unblocks the cascade, so nearly every body parks once.
	for round := 0; round < 3; round++ {
		sc.Run(func(rank int) bool {
			if rank > 0 {
				if _, ok := boxes[rank].TryTake(rank - 1); !ok {
					sc.WillPark(rank)
					if _, ok := boxes[rank].Take(rank - 1); !ok {
						t.Error("unexpected interrupt")
					}
				}
			}
			if rank+1 < p {
				boxes[rank+1].Put(Msg{Src: rank})
			}
			return true
		})
	}
	deadline := time.Now().Add(2 * time.Second)
	var after int
	for time.Now().Before(deadline) {
		if after = runtime.NumGoroutine(); after <= before+w+1 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Errorf("resident goroutines not O(w): before=%d after=%d (w=%d, p=%d)", before, after, w, p)
}

// TestSchedParkUnparkStress is the -race stress for the driver hand-off:
// many ranks over few shards, every body blocking on a pseudo-random
// partner so driver roles bounce between goroutines, repeated across
// runs so spares are spawned, reused, and retired.
func TestSchedParkUnparkStress(t *testing.T) {
	const p, w, rounds = 64, 3, 20
	boxes := make([]*Box, p)
	for i := range boxes {
		boxes[i] = New()
	}
	sc := NewSched(p, w)
	defer sc.Close()
	for round := 0; round < rounds; round++ {
		shift := 1 + round%(p-1)
		sc.Run(func(rank int) bool {
			dst := (rank + shift) % p
			src := (rank - shift + p) % p
			boxes[dst].Put(Msg{Src: rank, Tag: uint64(round)})
			m, ok := boxes[rank].TryTake(src)
			if !ok {
				sc.WillPark(rank)
				m, ok = boxes[rank].Take(src)
			}
			if !ok || m.Tag != uint64(round) {
				t.Errorf("round %d rank %d: got %+v ok=%v", round, rank, m, ok)
			}
			return true
		})
	}
}

// TestArmFiresNotifyOnPut pins the Arm contract: a queued message makes
// Arm refuse (consumer proceeds synchronously); otherwise the next Put
// from the armed sender fires notify exactly once, and traffic from other
// senders does not.
func TestArmFiresNotifyOnPut(t *testing.T) {
	b := New()
	var fired atomic.Int32
	b.SetNotify(7, func(rank int) {
		if rank != 7 {
			t.Errorf("notify rank = %d, want 7", rank)
		}
		fired.Add(1)
	})
	b.Put(Msg{Src: 2})
	if b.Arm(2) {
		t.Fatal("Arm armed despite a queued message from the sender")
	}
	if !b.Arm(3) {
		t.Fatal("Arm refused on an empty sender")
	}
	b.Put(Msg{Src: 2}) // unrelated sender: no notify
	if got := fired.Load(); got != 0 {
		t.Fatalf("unrelated Put fired notify %d times", got)
	}
	b.Put(Msg{Src: 3})
	if got := fired.Load(); got != 1 {
		t.Fatalf("notify fired %d times, want 1", got)
	}
	b.Put(Msg{Src: 3}) // box no longer armed
	if got := fired.Load(); got != 1 {
		t.Fatalf("disarmed box fired notify again (%d)", got)
	}
}

// TestArmInterruptedFiresNotify pins the abort path: interrupting an
// armed box fires notify (so a suspended body gets rescheduled to observe
// the abort), and Arm on an interrupted box refuses.
func TestArmInterruptedFiresNotify(t *testing.T) {
	b := New()
	var fired atomic.Int32
	b.SetNotify(0, func(int) { fired.Add(1) })
	if !b.Arm(1) {
		t.Fatal("Arm refused")
	}
	b.Interrupt()
	if got := fired.Load(); got != 1 {
		t.Fatalf("Interrupt fired notify %d times, want 1", got)
	}
	if b.Arm(1) {
		t.Fatal("Arm armed an interrupted box")
	}
	b.Reset()
	if !b.Arm(1) {
		t.Fatal("Arm refused after Reset")
	}
}

// TestSchedContinuationSuspendResume drives the full suspend/resume
// protocol at the scheduler layer: every body (but the last rank) arms
// its box and returns false, the cascade of Puts resumes them through
// Ready, and no goroutine beyond the w workers ever appears.
func TestSchedContinuationSuspendResume(t *testing.T) {
	const p, w = 512, 3
	boxes := make([]*Box, p)
	sc := NewSched(p, w)
	defer sc.Close()
	for i := range boxes {
		boxes[i] = New()
		boxes[i].SetNotify(i, sc.Ready)
	}
	before := runtime.NumGoroutine()
	var maxGor atomic.Int32
	state := make([]int, p) // 0 = not started, 1 = suspended, 2 = done
	for round := 0; round < 3; round++ {
		for i := range state {
			state[i] = 0
		}
		sc.Run(func(rank int) bool {
			if g := int32(runtime.NumGoroutine()); g > maxGor.Load() {
				maxGor.Store(g)
			}
			if rank < p-1 && state[rank] == 0 {
				// Wait for my successor's token as a continuation: arm and
				// suspend unless it already arrived.
				state[rank] = 1
				if boxes[rank].Arm(rank + 1) {
					return false
				}
			}
			if rank < p-1 {
				if m, ok := boxes[rank].TryTake(rank + 1); !ok || m.Src != rank+1 {
					t.Errorf("rank %d: resumed without its message (ok=%v)", rank, ok)
				}
			}
			if rank > 0 {
				boxes[rank-1].Put(Msg{Src: rank})
			}
			state[rank] = 2
			return true
		})
		for i, s := range state {
			if s != 2 {
				t.Fatalf("round %d: rank %d finished in state %d", round, i, s)
			}
		}
	}
	// The cascade suspends p−1 bodies; none of them may hold a goroutine.
	if got := int(maxGor.Load()); got > before+w+2 {
		t.Errorf("mid-run goroutines reached %d (baseline %d, w=%d); continuations should not spawn", got, before, w)
	}
}

// TestSchedSpillOnPark pins the batched-pop hand-off: a driver that
// parks mid-batch must spill its claimed remainder so the hand-off
// recipient runs every rank exactly once.
func TestSchedSpillOnPark(t *testing.T) {
	const p, w = 64, 1 // one shard: every batch remainder must be spilled
	boxes := make([]*Box, p)
	for i := range boxes {
		boxes[i] = New()
	}
	sc := NewSched(p, w)
	defer sc.Close()
	hits := make([]atomic.Int32, p)
	for round := 0; round < 5; round++ {
		sc.Run(func(rank int) bool {
			hits[rank].Add(1)
			// Every rank waits for its successor: with one shard the driver
			// parks on (nearly) every body, exercising spill on every batch.
			if rank < p-1 {
				if _, ok := boxes[rank].TryTake(rank + 1); !ok {
					sc.WillPark(rank)
					if _, ok := boxes[rank].Take(rank + 1); !ok {
						t.Error("unexpected interrupt")
					}
				}
			}
			if rank > 0 {
				boxes[rank-1].Put(Msg{Src: rank})
			}
			return true
		})
	}
	for r := range hits {
		if got := hits[r].Load(); got != 5 {
			t.Errorf("rank %d ran %d times, want 5", r, got)
		}
	}
}

// TestSchedContinuationStress is the -race stress for suspend/resume at
// w < p: pseudo-random partner shifts, bodies suspending as continuations
// and resuming on arbitrary workers, repeated across runs.
func TestSchedContinuationStress(t *testing.T) {
	const p, w, rounds = 96, 3, 20
	boxes := make([]*Box, p)
	sc := NewSched(p, w)
	defer sc.Close()
	for i := range boxes {
		boxes[i] = New()
		boxes[i].SetNotify(i, sc.Ready)
	}
	sent := make([]bool, p)
	for round := 0; round < rounds; round++ {
		shift := 1 + round%(p-1)
		for i := range sent {
			sent[i] = false
		}
		sc.Run(func(rank int) bool {
			src := (rank - shift + p) % p
			if !sent[rank] {
				sent[rank] = true
				boxes[(rank+shift)%p].Put(Msg{Src: rank, Tag: uint64(round)})
				if boxes[rank].Arm(src) {
					return false
				}
			}
			m, ok := boxes[rank].TryTake(src)
			if !ok || m.Tag != uint64(round) {
				t.Errorf("round %d rank %d: got %+v ok=%v", round, rank, m, ok)
			}
			return true
		})
	}
}

// TestSchedContinuationResumeReuse is the resume-path reuse stress: a
// rank suspends (Arm → notify → Ready → re-exec) several times within
// one Run and the whole cycle repeats across Run boundaries on the same
// scheduler — the lifecycle under which comm's pooled stepper state is
// recycled. Each suspension must deliver exactly the awaited message,
// and a rank resumed mid-batch must be able to re-arm immediately.
func TestSchedContinuationResumeReuse(t *testing.T) {
	const p, w, rounds, hops = 64, 3, 8, 4
	boxes := make([]*Box, p)
	sc := NewSched(p, w)
	defer sc.Close()
	for i := range boxes {
		boxes[i] = New()
		boxes[i].SetNotify(i, sc.Ready)
	}
	hop := make([]int, p)
	sent := make([][hops]bool, p)
	var delivered atomic.Int64
	for round := 0; round < rounds; round++ {
		for i := range hop {
			hop[i] = 0
			sent[i] = [hops]bool{}
		}
		round := round
		sc.Run(func(rank int) bool {
			for hop[rank] < hops {
				h := hop[rank]
				// Per-hop shifted ring: each hop pairs every rank with a
				// different partner, so one body arms and resumes several
				// times within one Run.
				shift := 1 + (round+h)%(p-1)
				if !sent[rank][h] {
					sent[rank][h] = true
					boxes[(rank+shift)%p].Put(Msg{Src: rank, Tag: uint64(round*hops + h)})
				}
				src := (rank - shift + p) % p
				m, ok := boxes[rank].TryTake(src)
				if !ok {
					if boxes[rank].Arm(src) {
						return false // suspended; Ready re-runs this rank
					}
					continue
				}
				if int(m.Tag) != round*hops+h {
					t.Errorf("round %d hop %d rank %d: tag %d", round, h, rank, m.Tag)
				}
				delivered.Add(1)
				hop[rank]++
			}
			return true
		})
	}
	if got, want := delivered.Load(), int64(rounds*p*hops); got != want {
		t.Fatalf("delivered %d messages, want %d", got, want)
	}
}

// TestReadyQueueHandOffWhenRolelessBodyBlocks pins the WillPark path for
// a body with no driver role (resumed via the ready queue): if it blocks
// while another resumed rank is waiting in the ready queue, the draining
// duty must be handed off — at w = 1 there is no other goroutine to pick
// the queue up, and without the hand-off this shape deadlocks.
func TestReadyQueueHandOffWhenRolelessBodyBlocks(t *testing.T) {
	const p, w = 2, 1
	boxes := [p]*Box{New(), New()}
	sc := NewSched(p, w)
	defer sc.Close()
	for i := range boxes {
		boxes[i].SetNotify(i, sc.Ready)
	}
	var phase [p]int
	go func() {
		// Let both bodies suspend and the sole worker park, then resume
		// rank 0 first and rank 1 behind it.
		time.Sleep(20 * time.Millisecond)
		boxes[0].Put(Msg{Src: 1, Tag: 1})
		boxes[1].Put(Msg{Src: 0, Tag: 1})
	}()
	done := make(chan struct{})
	go func() {
		defer close(done)
		sc.Run(func(rank int) bool {
			other := 1 - rank
			if phase[rank] == 0 {
				phase[rank] = 1
				if boxes[rank].Arm(other) {
					return false
				}
			}
			if _, ok := boxes[rank].TryTake(other); !ok {
				t.Errorf("rank %d resumed without its message", rank)
			}
			if rank == 0 {
				// Wait until rank 1 is queued behind us, then block on a
				// message only rank 1 will send: the role-less WillPark must
				// hand the ready queue off or nothing ever runs rank 1.
				for sc.readyCount.Load() == 0 {
					runtime.Gosched()
				}
				sc.WillPark(rank)
				if m, ok := boxes[0].Take(1); !ok || m.Tag != 2 {
					t.Errorf("second take: %+v ok=%v", m, ok)
				}
			} else {
				boxes[0].Put(Msg{Src: 1, Tag: 2})
			}
			return true
		})
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("deadlock: ready-queue hand-off from role-less parked body missing")
	}
}

// armedOn reports whether b is armed (test-only peek).
func armedOn(b *Box) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.armed) > 0
}

// TestTransientExitHandsOffReadyQueue pins the off-duty check: a
// transient goroutine finishing a formerly-parked body must not exit
// while a freshly-resumed rank sits in the ready queue and every
// permanent worker is blocked inside a body. Shape (w = 1): rank 0
// blocks on rank 2 (occupying the sole worker), rank 1 blocks on rank 2
// (occupying transient T1), rank 2 suspends as a continuation awaiting
// rank 1's reply and its transient exits; rank 1's reply resumes rank 2
// — whose Ready only T1's exit path can service, since the worker is
// still blocked in rank 0.
func TestTransientExitHandsOffReadyQueue(t *testing.T) {
	const p, w = 3, 1
	boxes := [p]*Box{New(), New(), New()}
	sc := NewSched(p, w)
	defer sc.Close()
	for i := range boxes {
		boxes[i].SetNotify(i, sc.Ready)
	}
	var phase2 int
	done := make(chan struct{})
	go func() {
		defer close(done)
		sc.Run(func(rank int) bool {
			switch rank {
			case 0:
				if _, ok := boxes[0].TryTake(2); !ok {
					sc.WillPark(0)
					if _, ok := boxes[0].Take(2); !ok {
						t.Error("rank 0 interrupted")
					}
				}
			case 1:
				if _, ok := boxes[1].TryTake(2); !ok {
					sc.WillPark(1)
					if _, ok := boxes[1].Take(2); !ok {
						t.Error("rank 1 interrupted")
					}
				}
				// Reply only once rank 2 is provably suspended, so its
				// resume cannot be serviced by rank 2's own goroutine.
				for !armedOn(boxes[2]) {
					runtime.Gosched()
				}
				boxes[2].Put(Msg{Src: 1})
			default: // rank 2
				if phase2 == 0 {
					phase2 = 1
					boxes[1].Put(Msg{Src: 2})
					if boxes[2].Arm(1) {
						return false
					}
				}
				if _, ok := boxes[2].TryTake(1); !ok {
					t.Error("rank 2 resumed without its reply")
				}
				boxes[0].Put(Msg{Src: 2})
			}
			return true
		})
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("deadlock: ready queue stranded by an exiting transient goroutine")
	}
}
