package mailbox

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPerSenderFIFO(t *testing.T) {
	b := New()
	// Two interleaved senders; per-sender order must survive demux.
	for i := 0; i < 3; i++ {
		b.Put(Msg{Src: 1, Tag: uint64(10 + i)})
		b.Put(Msg{Src: 2, Tag: uint64(20 + i)})
	}
	for i := 0; i < 3; i++ {
		m, ok := b.TryTake(2)
		if !ok || m.Tag != uint64(20+i) {
			t.Fatalf("from 2 step %d: got %+v ok=%v", i, m, ok)
		}
	}
	for i := 0; i < 3; i++ {
		m, ok := b.TryTake(1)
		if !ok || m.Tag != uint64(10+i) {
			t.Fatalf("from 1 step %d: got %+v ok=%v", i, m, ok)
		}
	}
	if _, ok := b.TryTake(1); ok {
		t.Fatal("box should be empty")
	}
}

func TestTakeBlocksUntilPut(t *testing.T) {
	b := New()
	done := make(chan Msg)
	go func() {
		m, ok := b.Take(3)
		if !ok {
			t.Error("Take interrupted unexpectedly")
		}
		done <- m
	}()
	// Traffic from other senders must not satisfy (or wedge) the waiter.
	b.Put(Msg{Src: 1, Tag: 100})
	select {
	case <-done:
		t.Fatal("Take returned a message from the wrong sender")
	case <-time.After(10 * time.Millisecond):
	}
	b.Put(Msg{Src: 3, Tag: 7})
	m := <-done
	if m.Tag != 7 || m.Src != 3 {
		t.Fatalf("got %+v", m)
	}
	if m2, ok := b.TryTake(1); !ok || m2.Tag != 100 {
		t.Fatalf("stashed message lost: %+v ok=%v", m2, ok)
	}
}

func TestInterruptWakesConsumer(t *testing.T) {
	b := New()
	done := make(chan bool)
	go func() {
		_, ok := b.Take(0)
		done <- ok
	}()
	time.Sleep(5 * time.Millisecond)
	b.Interrupt()
	if ok := <-done; ok {
		t.Fatal("interrupted Take reported ok")
	}
	// After Reset the box is usable again.
	b.Reset()
	b.Put(Msg{Src: 0, Tag: 1})
	if _, ok := b.Take(0); !ok {
		t.Fatal("Take failed after Reset")
	}
}

func TestResetDrains(t *testing.T) {
	b := New()
	for i := 0; i < 5; i++ {
		b.Put(Msg{Src: i, Data: make([]byte, 8)})
	}
	if b.Pending() != 5 {
		t.Fatalf("Pending = %d", b.Pending())
	}
	b.Reset()
	if b.Pending() != 0 {
		t.Fatalf("Pending after Reset = %d", b.Pending())
	}
}

// TestConcurrentSenders is the -race stress: many producers, one
// consumer, per-sender sequence numbers must arrive in order.
func TestConcurrentSenders(t *testing.T) {
	const senders, msgs = 8, 200
	b := New()
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < msgs; i++ {
				b.Put(Msg{Src: s, Tag: uint64(i)})
			}
		}(s)
	}
	got := make([]int, senders)
	for n := 0; n < senders*msgs; n++ {
		// Round-robin across senders exercises both stash and wait paths.
		src := n % senders
		m, ok := b.Take(src)
		if !ok {
			t.Fatal("unexpected interrupt")
		}
		if int(m.Tag) != got[src] {
			t.Fatalf("sender %d: got seq %d, want %d", src, m.Tag, got[src])
		}
		got[src]++
	}
	wg.Wait()
}

func TestWorkersRunAllRanks(t *testing.T) {
	const n = 16
	w := NewWorkers(n)
	defer w.Close()
	var hits [n]atomic.Int32
	for round := 0; round < 3; round++ {
		w.Run(func(rank int) { hits[rank].Add(1) })
	}
	for r := range hits {
		if got := hits[r].Load(); got != 3 {
			t.Errorf("rank %d ran %d times, want 3", r, got)
		}
	}
}

func TestWorkersCloseReleasesGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	w := NewWorkers(32)
	w.Run(func(rank int) {})
	w.Close()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Errorf("goroutines not released: before=%d after=%d", before, runtime.NumGoroutine())
}
