// Package mailbox is the scalable message runtime behind the simulated
// machine's mailbox backend (comm.BackendMailbox): per-receiver
// multi-producer/single-consumer mailboxes and the sharded worker
// scheduler (Sched) that multiplexes the p PE bodies over w ≪ p shards,
// so a resident machine holds O(w) goroutines rather than one per PE.
//
// The original engine allocates a buffered channel per ordered PE pair —
// O(p²·ChanCap) queue memory — which caps simulated scale far below the
// paper's algorithmic limits (p = 1024 already needs ~67M message slots).
// A Box replaces a receiver's whole channel column with one intake list,
// so a p-PE machine needs exactly p boxes: O(p) queue memory up front,
// plus one pooled node per message actually in flight.
//
// Ordering contract: messages from one sender are delivered to one
// receiver in send order (per-sender FIFO), exactly like the channel
// matrix. Messages from different senders may interleave arbitrarily —
// the receiver demultiplexes by asking for a specific sender (Take), and
// the metered communication paths of internal/comm stay deterministic
// because every receive names its source.
//
// Boxes never block the sender: intake is an unbounded linked list of
// nodes recycled through a sync.Pool, so the steady state allocates
// nothing and SPMD programs (whose in-flight volume is bounded by the
// protocol structure, not by backpressure) cannot deadlock on buffer
// capacity.
//
// A consumer that cannot afford to park a goroutine (a continuation-
// scheduled PE body, see comm.RunAsync) uses Arm instead of Take: Arm
// registers interest in a sender without blocking, and the next Put from
// that sender (or an Interrupt) fires the box's notify callback, which
// re-enqueues the suspended body on the scheduler's ready queue.
package mailbox

import "sync"

// Msg is one in-flight message. The fields mirror the metered message of
// internal/comm; Data is the payload reference handed to the receiver.
type Msg struct {
	Src    int
	Tag    uint64
	Words  int64
	Depart float64
	Data   any
}

// node is an intake-list cell, recycled through nodePool.
type node struct {
	msg  Msg
	next *node
}

var nodePool = sync.Pool{New: func() any { return new(node) }}

// Box is a per-receiver mailbox: any number of senders Put concurrently,
// exactly one consumer goroutine at a time Takes (or Arms). The zero
// value is not ready; use New.
type Box struct {
	mu   sync.Mutex
	cond sync.Cond
	// Intake is a singly linked FIFO over all senders; per-sender order is
	// the sublist order, preserved because each sender appends its own
	// messages sequentially.
	head, tail *node
	// waitSrc is the sender rank the consumer is currently blocked on
	// (-1: not blocked). Producers signal only when they deliver for it,
	// so unrelated traffic does not wake the consumer.
	waitSrc     int
	interrupted bool
	// armSrc is the sender rank a suspended (continuation-scheduled)
	// consumer registered interest in via Arm (-1: not armed). The Put
	// that delivers for it — or an Interrupt — disarms and fires notify.
	armSrc     int
	notify     func(rank int)
	notifyRank int
}

// New returns an empty Box.
func New() *Box {
	b := &Box{waitSrc: -1, armSrc: -1}
	b.cond.L = &b.mu
	return b
}

// SetNotify installs the resume callback Arm relies on: fn(rank) is
// invoked (outside the box lock) when an armed box receives a message
// from the armed sender or is interrupted. One callback per box, set
// before any Arm; typically all boxes of a machine share one fn (the
// scheduler's Ready) and differ only in rank.
func (b *Box) SetNotify(rank int, fn func(rank int)) {
	b.notifyRank, b.notify = rank, fn
}

// Put appends m to the intake. It never blocks and is safe to call from
// any goroutine.
func (b *Box) Put(m Msg) {
	n := nodePool.Get().(*node)
	n.msg = m
	n.next = nil
	b.mu.Lock()
	if b.tail == nil {
		b.head = n
	} else {
		b.tail.next = n
	}
	b.tail = n
	wake := b.waitSrc == m.Src
	fire := b.armSrc == m.Src
	if fire {
		b.armSrc = -1
	}
	b.mu.Unlock()
	if wake {
		b.cond.Signal()
	}
	if fire {
		b.notify(b.notifyRank)
	}
}

// TryTake removes and returns the oldest queued message from src without
// blocking. Consumer only.
func (b *Box) TryTake(src int) (Msg, bool) {
	b.mu.Lock()
	n := b.remove(src)
	b.mu.Unlock()
	if n == nil {
		return Msg{}, false
	}
	return release(n), true
}

// Take blocks until a message from src is available (ok = true) or the
// box is interrupted (ok = false). Consumer only.
func (b *Box) Take(src int) (Msg, bool) {
	b.mu.Lock()
	for {
		if n := b.remove(src); n != nil {
			b.mu.Unlock()
			return release(n), true
		}
		if b.interrupted {
			b.mu.Unlock()
			return Msg{}, false
		}
		b.waitSrc = src
		b.cond.Wait()
		b.waitSrc = -1
	}
}

// Arm registers interest in the next message from src without blocking:
// if one is already queued (or the box is interrupted) Arm reports false
// and the consumer proceeds synchronously; otherwise the box is armed and
// Arm reports true — the consumer must then suspend, and the notify
// callback will fire exactly once when a message from src arrives or the
// box is interrupted. Consumer only; at most one armed sender at a time.
func (b *Box) Arm(src int) bool {
	b.mu.Lock()
	if b.interrupted || b.has(src) {
		b.mu.Unlock()
		return false
	}
	b.armSrc = src
	b.mu.Unlock()
	return true
}

// Interrupted reports whether the box is in the interrupted state (the
// machine abort path). A suspended consumer whose Arm was refused checks
// it to distinguish "message ready" from "machine aborting".
func (b *Box) Interrupted() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.interrupted
}

// has reports whether a message from src is queued. Caller holds b.mu.
func (b *Box) has(src int) bool {
	for n := b.head; n != nil; n = n.next {
		if n.msg.Src == src {
			return true
		}
	}
	return false
}

// remove unlinks the first message from src. Caller holds b.mu.
func (b *Box) remove(src int) *node {
	var prev *node
	for n := b.head; n != nil; prev, n = n, n.next {
		if n.msg.Src == src {
			if prev == nil {
				b.head = n.next
			} else {
				prev.next = n.next
			}
			if b.tail == n {
				b.tail = prev
			}
			n.next = nil
			return n
		}
	}
	return nil
}

// release extracts the message and recycles the node, dropping the
// payload reference so the pool does not retain it.
func release(n *node) Msg {
	m := n.msg
	n.msg = Msg{}
	nodePool.Put(n)
	return m
}

// Interrupt wakes a blocked consumer and fires the notify callback of an
// armed one; subsequent and in-progress Takes return ok = false until
// Reset. Used by the machine abort path.
func (b *Box) Interrupt() {
	b.mu.Lock()
	b.interrupted = true
	fire := b.armSrc >= 0
	b.armSrc = -1
	b.mu.Unlock()
	b.cond.Broadcast()
	if fire {
		b.notify(b.notifyRank)
	}
}

// Reset discards all queued messages and clears the interrupt and armed
// flags. Must not race with Put, Take or Arm (the machine calls it
// between runs).
func (b *Box) Reset() {
	b.mu.Lock()
	n := b.head
	b.head, b.tail = nil, nil
	b.interrupted = false
	b.armSrc = -1
	b.mu.Unlock()
	for n != nil {
		next := n.next
		n.msg = Msg{}
		n.next = nil
		nodePool.Put(n)
		n = next
	}
}

// Pending returns the number of queued messages (diagnostics and tests).
func (b *Box) Pending() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	c := 0
	for n := b.head; n != nil; n = n.next {
		c++
	}
	return c
}
