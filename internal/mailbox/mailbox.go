// Package mailbox is the scalable message runtime behind the simulated
// machine's mailbox backend (comm.BackendMailbox): per-receiver
// multi-producer/single-consumer mailboxes and the sharded worker
// scheduler (Sched) that multiplexes the p PE bodies over w ≪ p shards,
// so a resident machine holds O(w) goroutines rather than one per PE.
//
// The original engine allocates a buffered channel per ordered PE pair —
// O(p²·ChanCap) queue memory — which caps simulated scale far below the
// paper's algorithmic limits (p = 1024 already needs ~67M message slots).
// A Box replaces a receiver's whole channel column with one intake list,
// so a p-PE machine needs exactly p boxes: O(p) queue memory up front,
// plus one pooled node per message actually in flight.
//
// Ordering contract: messages from one sender are delivered to one
// receiver in send order (per-sender FIFO), exactly like the channel
// matrix. Messages from different senders may interleave arbitrarily —
// the receiver demultiplexes by asking for a specific sender (Take), and
// the metered communication paths of internal/comm stay deterministic
// because every receive names its source.
//
// Boxes never block the sender: intake is an unbounded linked list of
// nodes recycled through a sync.Pool, so the steady state allocates
// nothing and SPMD programs (whose in-flight volume is bounded by the
// protocol structure, not by backpressure) cannot deadlock on buffer
// capacity.
package mailbox

import "sync"

// Msg is one in-flight message. The fields mirror the metered message of
// internal/comm; Data is the payload reference handed to the receiver.
type Msg struct {
	Src    int
	Tag    uint64
	Words  int64
	Depart float64
	Data   any
}

// node is an intake-list cell, recycled through nodePool.
type node struct {
	msg  Msg
	next *node
}

var nodePool = sync.Pool{New: func() any { return new(node) }}

// Box is a per-receiver mailbox: any number of senders Put concurrently,
// exactly one consumer goroutine Takes. The zero value is not ready; use
// New.
type Box struct {
	mu   sync.Mutex
	cond sync.Cond
	// Intake is a singly linked FIFO over all senders; per-sender order is
	// the sublist order, preserved because each sender appends its own
	// messages sequentially.
	head, tail *node
	// waitSrc is the sender rank the consumer is currently blocked on
	// (-1: not blocked). Producers signal only when they deliver for it,
	// so unrelated traffic does not wake the consumer.
	waitSrc     int
	interrupted bool
}

// New returns an empty Box.
func New() *Box {
	b := &Box{waitSrc: -1}
	b.cond.L = &b.mu
	return b
}

// Put appends m to the intake. It never blocks and is safe to call from
// any goroutine.
func (b *Box) Put(m Msg) {
	n := nodePool.Get().(*node)
	n.msg = m
	n.next = nil
	b.mu.Lock()
	if b.tail == nil {
		b.head = n
	} else {
		b.tail.next = n
	}
	b.tail = n
	wake := b.waitSrc == m.Src
	b.mu.Unlock()
	if wake {
		b.cond.Signal()
	}
}

// TryTake removes and returns the oldest queued message from src without
// blocking. Consumer only.
func (b *Box) TryTake(src int) (Msg, bool) {
	b.mu.Lock()
	n := b.remove(src)
	b.mu.Unlock()
	if n == nil {
		return Msg{}, false
	}
	return release(n), true
}

// Take blocks until a message from src is available (ok = true) or the
// box is interrupted (ok = false). Consumer only.
func (b *Box) Take(src int) (Msg, bool) {
	b.mu.Lock()
	for {
		if n := b.remove(src); n != nil {
			b.mu.Unlock()
			return release(n), true
		}
		if b.interrupted {
			b.mu.Unlock()
			return Msg{}, false
		}
		b.waitSrc = src
		b.cond.Wait()
		b.waitSrc = -1
	}
}

// remove unlinks the first message from src. Caller holds b.mu.
func (b *Box) remove(src int) *node {
	var prev *node
	for n := b.head; n != nil; prev, n = n, n.next {
		if n.msg.Src == src {
			if prev == nil {
				b.head = n.next
			} else {
				prev.next = n.next
			}
			if b.tail == n {
				b.tail = prev
			}
			n.next = nil
			return n
		}
	}
	return nil
}

// release extracts the message and recycles the node, dropping the
// payload reference so the pool does not retain it.
func release(n *node) Msg {
	m := n.msg
	n.msg = Msg{}
	nodePool.Put(n)
	return m
}

// Interrupt wakes a blocked consumer; subsequent and in-progress Takes
// return ok = false until Reset. Used by the machine abort path.
func (b *Box) Interrupt() {
	b.mu.Lock()
	b.interrupted = true
	b.mu.Unlock()
	b.cond.Broadcast()
}

// Reset discards all queued messages and clears the interrupt flag. Must
// not race with Put or Take (the machine calls it between runs).
func (b *Box) Reset() {
	b.mu.Lock()
	n := b.head
	b.head, b.tail = nil, nil
	b.interrupted = false
	b.mu.Unlock()
	for n != nil {
		next := n.next
		n.msg = Msg{}
		n.next = nil
		nodePool.Put(n)
		n = next
	}
}

// Pending returns the number of queued messages (diagnostics and tests).
func (b *Box) Pending() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	c := 0
	for n := b.head; n != nil; n = n.next {
		c++
	}
	return c
}
