// Package mailbox is the scalable message runtime behind the simulated
// machine's mailbox backend (comm.BackendMailbox): per-receiver
// multi-producer/single-consumer mailboxes and the sharded worker
// scheduler (Sched) that multiplexes the p PE bodies over w ≪ p shards,
// so a resident machine holds O(w) goroutines rather than one per PE.
//
// The original engine allocates a buffered channel per ordered PE pair —
// O(p²·ChanCap) queue memory — which caps simulated scale far below the
// paper's algorithmic limits (p = 1024 already needs ~67M message slots).
// A Box replaces a receiver's whole channel column with one intake list,
// so a p-PE machine needs exactly p boxes: O(p) queue memory up front,
// plus one pooled node per message actually in flight.
//
// Ordering contract: messages from one sender in one communication
// context are delivered to one receiver in send order (per-key FIFO,
// key = (sender, context)), exactly like the channel matrix. Messages
// under different keys may interleave arbitrarily — the receiver
// demultiplexes by asking for a specific key (TakeKey), and the metered
// communication paths of internal/comm stay deterministic because every
// receive names its source and context.
//
// Demux structure: producers append to a single intake FIFO (no map
// touch, so Put stays a pointer append under the lock). The consumer
// moves intake nodes into per-key sublists lazily, each node exactly
// once, so matching never rescans messages it already classified — a
// serving machine with many live contexts pays O(1) amortized per
// message instead of an O(pending) scan per receive. While no sublist
// holds anything (every single-context workload), consumer pops match
// the intake head directly and the demux layer costs nothing.
//
// Boxes never block the sender: intake is an unbounded linked list of
// nodes recycled through a sync.Pool, so the steady state allocates
// nothing and SPMD programs (whose in-flight volume is bounded by the
// protocol structure, not by backpressure) cannot deadlock on buffer
// capacity.
//
// A consumer that cannot afford to park a goroutine (a continuation-
// scheduled PE body, see comm.RunAsync) uses Arm instead of Take: Arm
// registers interest in a key — ArmKeys in any of several keys, for a
// body multiplexing independent queries — without blocking, and the
// next Put matching (or an Interrupt) fires the box's notify callback,
// which re-enqueues the suspended body on the scheduler's ready queue.
package mailbox

import "sync"

// Msg is one in-flight message. The fields mirror the metered message of
// internal/comm; Data is the payload reference handed to the receiver.
type Msg struct {
	Src    int
	Ctx    uint32
	Tag    uint64
	Words  int64
	Depart float64
	Data   any
}

// Key packs a (sender rank, communication context) pair into the uint64
// the Box demultiplexes on. Context 0 keys equal the bare sender rank,
// so single-context programs (and the pre-context call sites) read
// unchanged.
func Key(src int, ctx uint32) uint64 { return uint64(ctx)<<32 | uint64(uint32(src)) }

// KeySrc extracts the sender rank of a key.
func KeySrc(key uint64) int { return int(uint32(key)) }

// KeyCtx extracts the communication context of a key.
func KeyCtx(key uint64) uint32 { return uint32(key >> 32) }

// node is an intake-list cell, recycled through nodePool. key caches
// Key(msg.Src, msg.Ctx) so demux never recomputes it.
type node struct {
	msg  Msg
	key  uint64
	next *node
}

var nodePool = sync.Pool{New: func() any { return new(node) }}

// subq is one key's demuxed FIFO. Sub-queues are created on the first
// out-of-order message for their key and then kept in the map even when
// empty, so a steady-state serving loop allocates nothing per message.
type subq struct{ head, tail *node }

// Box is a per-receiver mailbox: any number of senders Put concurrently,
// exactly one consumer goroutine at a time Takes (or Arms). The zero
// value is not ready; use New.
type Box struct {
	mu   sync.Mutex
	cond sync.Cond
	// Intake is a singly linked FIFO over all senders and contexts;
	// per-key order is the sublist order, preserved because each sender
	// appends its own messages sequentially and the demux below moves
	// nodes out in intake order.
	head, tail *node
	// subs holds the per-key sublists the consumer has demuxed so far;
	// subN counts the messages currently in them (0 means every queued
	// message still sits in intake order, enabling the head fast path).
	subs map[uint64]*subq
	subN int
	// waitKeys are the keys the consumer is currently blocked on (nil:
	// not blocked). Producers signal only when they deliver for one of
	// them, so unrelated traffic does not wake the consumer. waitBuf
	// backs the common single-key wait without allocating.
	waitKeys    []uint64
	waitBuf     [1]uint64
	interrupted bool
	// armed are the keys a suspended (continuation-scheduled) consumer
	// registered interest in via Arm/ArmKeys (nil: not armed). The Put
	// that delivers for any of them — or an Interrupt — disarms all and
	// fires notify once. armBuf backs the single-key Arm.
	armed      []uint64
	armBuf     [1]uint64
	notify     func(rank int)
	notifyRank int
}

// New returns an empty Box.
func New() *Box {
	b := &Box{}
	b.cond.L = &b.mu
	return b
}

// SetNotify installs the resume callback Arm relies on: fn(rank) is
// invoked (outside the box lock) when an armed box receives a matching
// message or is interrupted. One callback per box, set before any Arm;
// typically all boxes of a machine share one fn (the scheduler's Ready)
// and differ only in rank.
func (b *Box) SetNotify(rank int, fn func(rank int)) {
	b.notifyRank, b.notify = rank, fn
}

// keysContain reports whether keys holds key. Wait/arm sets are one or
// a handful of entries (a body waits on one handle, a serving mux on a
// few pending queries), so a linear scan beats any structure.
func keysContain(keys []uint64, key uint64) bool {
	for _, k := range keys {
		if k == key {
			return true
		}
	}
	return false
}

// Put appends m to the intake. It never blocks and is safe to call from
// any goroutine.
func (b *Box) Put(m Msg) {
	n := nodePool.Get().(*node)
	n.msg = m
	n.key = Key(m.Src, m.Ctx)
	n.next = nil
	b.mu.Lock()
	if b.tail == nil {
		b.head = n
	} else {
		b.tail.next = n
	}
	b.tail = n
	wake := keysContain(b.waitKeys, n.key)
	fire := keysContain(b.armed, n.key)
	if fire {
		b.armed = nil
	}
	b.mu.Unlock()
	if wake {
		b.cond.Signal()
	}
	if fire {
		b.notify(b.notifyRank)
	}
}

// demux moves every intake node into its key's sublist, each node
// exactly once. Caller holds b.mu.
func (b *Box) demux() {
	for n := b.head; n != nil; {
		next := n.next
		q := b.subs[n.key]
		if q == nil {
			if b.subs == nil {
				b.subs = make(map[uint64]*subq)
			}
			q = &subq{}
			b.subs[n.key] = q
		}
		n.next = nil
		if q.tail == nil {
			q.head = n
		} else {
			q.tail.next = n
		}
		q.tail = n
		b.subN++
		n = next
	}
	b.head, b.tail = nil, nil
}

// popKey unlinks the oldest message for key. Caller holds b.mu. While
// the sublists are empty the intake head is matched directly — the
// single-context fast path; otherwise intake is demuxed (each node
// moved once, amortized O(1)) and the pop is a sublist head unlink.
func (b *Box) popKey(key uint64) *node {
	if b.subN == 0 {
		n := b.head
		if n == nil {
			return nil
		}
		if n.key == key {
			b.head = n.next
			if b.head == nil {
				b.tail = nil
			}
			n.next = nil
			return n
		}
	}
	b.demux()
	q := b.subs[key]
	if q == nil || q.head == nil {
		return nil
	}
	n := q.head
	q.head = n.next
	if q.head == nil {
		q.tail = nil
	}
	n.next = nil
	b.subN--
	return n
}

// hasKey reports whether a message for key is queued. Caller holds b.mu.
func (b *Box) hasKey(key uint64) bool {
	if b.subN == 0 && b.head != nil && b.head.key == key {
		return true
	}
	b.demux()
	q := b.subs[key]
	return q != nil && q.head != nil
}

// TryTake removes and returns the oldest queued message from src in
// context 0 without blocking. Consumer only.
func (b *Box) TryTake(src int) (Msg, bool) { return b.TryTakeKey(Key(src, 0)) }

// TryTakeKey removes and returns the oldest queued message for key
// without blocking. Consumer only.
func (b *Box) TryTakeKey(key uint64) (Msg, bool) {
	b.mu.Lock()
	n := b.popKey(key)
	b.mu.Unlock()
	if n == nil {
		return Msg{}, false
	}
	return release(n), true
}

// Take blocks until a message from src in context 0 is available
// (ok = true) or the box is interrupted (ok = false). Consumer only.
func (b *Box) Take(src int) (Msg, bool) { return b.TakeKey(Key(src, 0)) }

// TakeKey blocks until a message for key is available (ok = true) or the
// box is interrupted (ok = false). Consumer only.
func (b *Box) TakeKey(key uint64) (Msg, bool) {
	b.mu.Lock()
	for {
		if n := b.popKey(key); n != nil {
			b.mu.Unlock()
			return release(n), true
		}
		if b.interrupted {
			b.mu.Unlock()
			return Msg{}, false
		}
		b.waitBuf[0] = key
		b.waitKeys = b.waitBuf[:1]
		b.cond.Wait()
		b.waitKeys = nil
	}
}

// WaitAnyKeys blocks until a message for any of keys is available and
// removes and returns the oldest such message (scanning keys in order),
// or reports ok = false on interrupt. Consumer only. The keys slice is
// read only during the call.
func (b *Box) WaitAnyKeys(keys []uint64) (Msg, bool) {
	b.mu.Lock()
	for {
		for _, k := range keys {
			if n := b.popKey(k); n != nil {
				b.mu.Unlock()
				return release(n), true
			}
		}
		if b.interrupted {
			b.mu.Unlock()
			return Msg{}, false
		}
		b.waitKeys = keys
		b.cond.Wait()
		b.waitKeys = nil
	}
}

// Arm registers interest in the next message from src in context 0
// without blocking: if one is already queued (or the box is interrupted)
// Arm reports false and the consumer proceeds synchronously; otherwise
// the box is armed and Arm reports true — the consumer must then
// suspend, and the notify callback will fire exactly once when a
// matching message arrives or the box is interrupted. Consumer only; at
// most one armed key set at a time.
func (b *Box) Arm(src int) bool { return b.ArmKey(Key(src, 0)) }

// ArmKey is Arm for an explicit (src, ctx) key.
func (b *Box) ArmKey(key uint64) bool {
	b.mu.Lock()
	if b.interrupted || b.hasKey(key) {
		b.mu.Unlock()
		return false
	}
	b.armBuf[0] = key
	b.armed = b.armBuf[:1]
	b.mu.Unlock()
	return true
}

// ArmKeys arms the box on several keys at once — the multiplexing form
// for a body with multiple suspended queries: if a message for any key
// is already queued (or the box is interrupted) it reports false;
// otherwise the first matching Put disarms every key and fires notify
// exactly once. The caller must not mutate keys until the box fires or
// is reset — the box retains the slice, so callers reuse a per-rank
// buffer rebuilt on every suspension.
func (b *Box) ArmKeys(keys []uint64) bool {
	b.mu.Lock()
	if b.interrupted {
		b.mu.Unlock()
		return false
	}
	for _, k := range keys {
		if b.hasKey(k) {
			b.mu.Unlock()
			return false
		}
	}
	b.armed = keys
	b.mu.Unlock()
	return true
}

// Interrupted reports whether the box is in the interrupted state (the
// machine abort path). A suspended consumer whose Arm was refused checks
// it to distinguish "message ready" from "machine aborting".
func (b *Box) Interrupted() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.interrupted
}

// release extracts the message and recycles the node, dropping the
// payload reference so the pool does not retain it.
func release(n *node) Msg {
	m := n.msg
	n.msg = Msg{}
	nodePool.Put(n)
	return m
}

// Interrupt wakes a blocked consumer and fires the notify callback of an
// armed one; subsequent and in-progress Takes return ok = false until
// Reset. Used by the machine abort path.
func (b *Box) Interrupt() {
	b.mu.Lock()
	b.interrupted = true
	fire := len(b.armed) > 0
	b.armed = nil
	b.mu.Unlock()
	b.cond.Broadcast()
	if fire {
		b.notify(b.notifyRank)
	}
}

// Reset discards all queued messages and clears the interrupt and armed
// flags. The demuxed sub-queues are kept (empty) so steady-state reuse
// allocates nothing. Must not race with Put, Take or Arm (the machine
// calls it between runs).
func (b *Box) Reset() {
	b.mu.Lock()
	n := b.head
	b.head, b.tail = nil, nil
	for _, q := range b.subs {
		for m := q.head; m != nil; {
			next := m.next
			m.msg = Msg{}
			m.next = nil
			nodePool.Put(m)
			m = next
		}
		q.head, q.tail = nil, nil
	}
	b.subN = 0
	b.interrupted = false
	b.armed = nil
	b.mu.Unlock()
	for n != nil {
		next := n.next
		n.msg = Msg{}
		n.next = nil
		nodePool.Put(n)
		n = next
	}
}

// Pending returns the number of queued messages (diagnostics and tests).
func (b *Box) Pending() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	c := b.subN
	for n := b.head; n != nil; n = n.next {
		c++
	}
	return c
}
