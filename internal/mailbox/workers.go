package mailbox

import "sync"

// Workers is a pool of n persistent goroutines, one per PE rank. The
// channel-matrix engine spawns p goroutines on every Machine.Run — the
// ~2 allocs/PE/op floor the PR 1 benchmarks identified — whereas a pool
// pays the spawn cost once per Machine and feeds run bodies to parked
// workers over per-rank kick channels; a steady-state Run allocates
// nothing.
//
// Concurrency contract: Run and Close are called from one coordinating
// goroutine at a time (Machine.Run already requires this). The fn field
// is published to workers by the kick-channel send (happens-before) and
// cleared after the final Done so parked workers pin no run state between
// runs.
type Workers struct {
	fn   func(rank int)
	kick []chan struct{}
	wg   sync.WaitGroup
}

// NewWorkers starts n parked workers. Callers that do not keep the
// machine alive forever should arrange for Close (internal/comm installs
// a finalizer); a parked worker references only its kick channel, so it
// never keeps the owning machine reachable.
func NewWorkers(n int) *Workers {
	w := &Workers{kick: make([]chan struct{}, n)}
	for i := range w.kick {
		c := make(chan struct{}, 1)
		w.kick[i] = c
		go w.work(i, c)
	}
	return w
}

func (w *Workers) work(rank int, c chan struct{}) {
	for range c {
		w.fn(rank)
		w.wg.Done()
	}
}

// Run executes fn(rank) on every worker concurrently and blocks until all
// return. fn must not panic (wrap bodies with recover at the call site).
func (w *Workers) Run(fn func(rank int)) {
	w.fn = fn
	w.wg.Add(len(w.kick))
	for _, c := range w.kick {
		c <- struct{}{}
	}
	w.wg.Wait()
	w.fn = nil
}

// Close terminates all workers. Must not overlap a Run; Run must not be
// called afterwards.
func (w *Workers) Close() {
	for _, c := range w.kick {
		close(c)
	}
}

// Len returns the pool size.
func (w *Workers) Len() int { return len(w.kick) }
