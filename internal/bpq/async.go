package bpq

import (
	"cmp"

	"commtopk/internal/coll"
	"commtopk/internal/comm"
	"commtopk/internal/sel"
)

// Continuation forms of the queue's collective operations. The pattern
// matches sel's steppers: pooled per-PE state, the selection engine run
// as a sub-stepper in the cur slot, result-delivery closures cached on
// the pooled object. The blocking DeleteMin/DeleteMinFlexible/PeekMin
// drive these through comm.RunSteps — one implementation, both execution
// modes, bit-identical results, RNG consumption and metered schedule.

// tagged mirrors sel's optional-value reduction carrier (the sentinel
// for "this PE's queue is empty").
type tagged[K any] struct {
	Has bool
	Val K
}

func minTagged[K cmp.Ordered](a, b tagged[K]) tagged[K] {
	if !a.Has {
		return b
	}
	if !b.Has {
		return a
	}
	if b.Val < a.Val {
		return b
	}
	return a
}

func addInt64(a, b int64) int64 { return a + b }

// pqOps caches the generic operator func values per PE: taking the func
// value of a generic function materializes a dictionary closure, which
// escapes into the collective call and costs one heap allocation per
// operation unless cached (the coll.opsOf discipline).
type pqOps[K cmp.Ordered] struct {
	minTag func(a, b tagged[K]) tagged[K]
}

func opsOf[K cmp.Ordered](pe *comm.PE) *pqOps[K] {
	o := comm.GetSingleton[pqOps[K]](pe)
	if o.minTag == nil {
		o.minTag = minTagged[K]
	}
	return o
}

// GlobalLenStep is the continuation form of GlobalLen: out (optional)
// receives the total queue size on every PE.
func (q *Queue[K]) GlobalLenStep(out func(int64)) comm.Stepper {
	return coll.AllReduceScalarStep(q.pe, int64(q.tree.Len()), addInt64, out)
}

// peekMinStep phases.
const (
	pmphInit = iota
	pmphWait
	pmphDone
)

type peekMinStep[K cmp.Ordered] struct {
	q    *Queue[K]
	out  func(K, bool)
	self bool
	res  tagged[K]

	cur   comm.Stepper
	onTag func(tagged[K])
	phase int
}

func newPeekMinStep[K cmp.Ordered](q *Queue[K], out func(K, bool), self bool) *peekMinStep[K] {
	st := comm.GetPooled[peekMinStep[K]](q.pe)
	st.q, st.out, st.self = q, out, self
	st.phase = pmphInit
	st.cur = nil
	if st.onTag == nil {
		st.onTag = func(v tagged[K]) { st.res = v }
	}
	return st
}

// PeekMinStep is the continuation form of PeekMin: out (optional)
// receives the globally smallest key, ok=false when the queue is empty.
func (q *Queue[K]) PeekMinStep(out func(min K, ok bool)) comm.Stepper {
	return newPeekMinStep(q, out, true)
}

func (st *peekMinStep[K]) release(pe *comm.PE) {
	st.q, st.out, st.cur = nil, nil, nil
	st.res = tagged[K]{}
	comm.PutPooled(pe, st)
}

func (st *peekMinStep[K]) Step(pe *comm.PE) *comm.RecvHandle {
	for {
		if st.cur != nil {
			if h := st.cur.Step(pe); h != nil {
				return h
			}
			st.cur = nil
		}
		switch st.phase {
		case pmphInit:
			var c tagged[K]
			if v, ok := st.q.tree.Min(); ok {
				c = tagged[K]{true, v}
			}
			st.cur = coll.AllReduceScalarStep(pe, c, opsOf[K](pe).minTag, st.onTag)
			st.phase = pmphWait
		case pmphWait:
			st.phase = pmphDone
			if st.self {
				out, res := st.out, st.res
				st.release(pe)
				if out != nil {
					out(res.Val, res.Has)
				}
			}
			return nil
		default:
			return nil
		}
	}
}

// deleteMinStep phases.
const (
	dmphInit    = iota // start the global size sum
	dmphLenWait        // harvest total; drain fast path or start selection
	dmphSelWait        // harvest the threshold; split off the batch
	dmphDone
)

type deleteMinStep[K cmp.Ordered] struct {
	q          *Queue[K]
	kmin, kmax int64 // kmin == kmax: exact batch (DeleteMin semantics)
	flex       bool
	out        func([]K, K, int64)
	self       bool

	resBatch []K
	resV     K     // selection threshold (zero K on drain / empty)
	resN     int64 // realized batch size across all PEs

	total int64
	cur   comm.Stepper
	onLen func(int64)
	onSel func(K, int)
	onAms func(sel.AMSResult[K])
	phase int
}

func newDeleteMinStep[K cmp.Ordered](q *Queue[K], kmin, kmax int64, flex bool, out func([]K, K, int64), self bool) *deleteMinStep[K] {
	st := comm.GetPooled[deleteMinStep[K]](q.pe)
	st.q, st.kmin, st.kmax, st.flex, st.out, st.self = q, kmin, kmax, flex, out, self
	st.phase = dmphInit
	st.cur = nil
	if st.onLen == nil {
		st.onLen = func(v int64) { st.total = v }
		st.onSel = func(v K, _ int) { st.resV = v }
		st.onAms = func(r sel.AMSResult[K]) { st.resV, st.resN = r.Threshold, r.Count }
	}
	return st
}

// DeleteMinStep is the continuation form of DeleteMin: out (optional)
// receives this PE's share of the batch in ascending order, the agreed
// selection threshold (zero K when the queue drained or the batch is
// empty), and the realized global batch size.
func (q *Queue[K]) DeleteMinStep(k int64, out func(batch []K, threshold K, n int64)) comm.Stepper {
	return newDeleteMinStep(q, k, k, false, out, true)
}

// DeleteMinFlexibleStep is the continuation form of DeleteMinFlexible:
// the realized batch size n is chosen by the flexible selection in
// [kmin, kmax] (or the whole queue when fewer than kmin remain).
func (q *Queue[K]) DeleteMinFlexibleStep(kmin, kmax int64, out func(batch []K, threshold K, n int64)) comm.Stepper {
	return newDeleteMinStep(q, kmin, kmax, true, out, true)
}

func (st *deleteMinStep[K]) release(pe *comm.PE) {
	var zero K
	st.q, st.out, st.cur = nil, nil, nil
	st.resBatch = nil
	st.resV = zero
	comm.PutPooled(pe, st)
}

func (st *deleteMinStep[K]) finish(pe *comm.PE, batch []K, v K, n int64) *comm.RecvHandle {
	st.resBatch, st.resV, st.resN = batch, v, n
	st.phase = dmphDone
	if st.self {
		out := st.out
		st.release(pe)
		if out != nil {
			out(batch, v, n)
		}
	}
	return nil
}

// drain empties the local tree, recycling every node into the arena and
// reseeding the priority stream — consuming the same q.rng draw the
// previous tree-replacement implementation did, so the RNG trajectory
// (and with it every later batch) is unchanged.
func (st *deleteMinStep[K]) drain() []K {
	q := st.q
	out := q.tree.Keys()
	q.tree.Recycle()
	q.tree.Reseed(int64(q.rng.Uint64()))
	return out
}

func (st *deleteMinStep[K]) Step(pe *comm.PE) *comm.RecvHandle {
	for {
		if st.cur != nil {
			if h := st.cur.Step(pe); h != nil {
				return h
			}
			st.cur = nil
		}
		switch st.phase {
		case dmphInit:
			st.cur = st.q.GlobalLenStep(st.onLen)
			st.phase = dmphLenWait
		case dmphLenWait:
			var zero K
			total := st.total
			if st.flex {
				if total == 0 || st.kmax <= 0 {
					return st.finish(pe, nil, zero, 0)
				}
				if st.kmin >= total || st.kmax >= total {
					return st.finish(pe, st.drain(), zero, total)
				}
				kmin := max(st.kmin, 1)
				st.cur = sel.AMSSelectStep[K](pe, st.q.seq, kmin, st.kmax, st.q.rng, st.onAms)
			} else {
				if st.kmin <= 0 || total == 0 {
					return st.finish(pe, nil, zero, 0)
				}
				if st.kmin >= total {
					return st.finish(pe, st.drain(), zero, total)
				}
				st.resN = st.kmin // exact batch: the realized size is k
				st.cur = sel.MSSelectStep[K](pe, st.q.seq, st.kmin, st.q.shared, st.onSel)
			}
			st.phase = dmphSelWait
		case dmphSelWait:
			batch := st.q.tree.SplitByKey(st.resV)
			keys := batch.Keys()
			batch.Recycle()
			return st.finish(pe, keys, st.resV, st.resN)
		default:
			return nil
		}
	}
}
