package bpq

import (
	"cmp"

	"commtopk/internal/sel"
	"commtopk/internal/wire"
)

// RegisterWireCodecs registers the payload codecs the bulk priority queue
// over key type K puts on a cross-process frame: the selection and
// collective set for K plus the queue's own tagged optional-value carrier
// (PeekMin and the flexible-batch reductions). Call it from the shared
// registration package (see internal/wire/wireprogs); elemName is the
// on-wire identity of K and must match across processes.
func RegisterWireCodecs[K cmp.Ordered](elemName string) {
	sel.RegisterWireCodecs[K](elemName)
	wire.RegisterPOD[tagged[K]]("bpq.tagged[" + elemName + "]")
}
