package bpq

import (
	"slices"
	"testing"

	"commtopk/internal/comm"
)

func TestDeleteMinFlexibleDrainPaths(t *testing.T) {
	// kmin/kmax exceeding the queue size must drain everything; an empty
	// queue must return nothing; kmax <= 0 must be a no-op.
	const p = 3
	parts, sorted := uniqueValues(21, 50, p)
	m := comm.NewMachine(comm.DefaultConfig(p))
	out := make([][]uint64, p)
	m.MustRun(func(pe *comm.PE) {
		q := New[uint64](pe, 22)
		q.InsertBulk(parts[pe.Rank()])
		if got, k := q.DeleteMinFlexible(0, 0); got != nil || k != 0 {
			t.Errorf("kmax=0 returned %v/%d", got, k)
		}
		share, k := q.DeleteMinFlexible(100, 400) // larger than the 50 present
		if k != 50 {
			t.Errorf("oversized flexible delete removed %d", k)
		}
		out[pe.Rank()] = share
		if got, k := q.DeleteMinFlexible(1, 10); got != nil || k != 0 {
			t.Errorf("empty queue returned %v/%d", got, k)
		}
	})
	var all []uint64
	for _, s := range out {
		all = append(all, s...)
	}
	slices.Sort(all)
	if !slices.Equal(all, sorted) {
		t.Error("drain lost elements")
	}
}

func TestDeleteMinFlexibleKminClamped(t *testing.T) {
	// kmin < 1 is clamped to 1, not treated as "may return zero".
	const p = 2
	parts, _ := uniqueValues(23, 40, p)
	m := comm.NewMachine(comm.DefaultConfig(p))
	m.MustRun(func(pe *comm.PE) {
		q := New[uint64](pe, 24)
		q.InsertBulk(parts[pe.Rank()])
		_, k := q.DeleteMinFlexible(0, 10)
		if k < 1 || k > 10 {
			t.Errorf("clamped flexible delete removed %d", k)
		}
	})
}

func TestTreapSeqAtOutOfRangePanics(t *testing.T) {
	const p = 1
	m := comm.NewMachine(comm.DefaultConfig(p))
	err := m.Run(func(pe *comm.PE) {
		q := New[uint64](pe, 25)
		q.Insert(5)
		seq := treapSeq[uint64]{q.tree}
		if seq.Len() != 1 || seq.At(0) != 5 {
			t.Error("treapSeq accessors wrong")
		}
		if seq.CountLess(5) != 0 || seq.CountLE(5) != 1 {
			t.Error("treapSeq counts wrong")
		}
		seq.At(3) // must panic
	})
	if err == nil {
		t.Error("At out of range should panic")
	}
}

func TestInsertDuplicateRejectedLocally(t *testing.T) {
	m := comm.NewMachine(comm.DefaultConfig(1))
	m.MustRun(func(pe *comm.PE) {
		q := New[uint64](pe, 26)
		if !q.Insert(9) || q.Insert(9) {
			t.Error("duplicate insert semantics wrong")
		}
		if q.LocalLen() != 1 {
			t.Errorf("LocalLen = %d", q.LocalLen())
		}
	})
}
