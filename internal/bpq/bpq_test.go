package bpq

import (
	"slices"
	"testing"

	"commtopk/internal/comm"
	"commtopk/internal/xrand"
)

// uniqueValues produces n distinct uint64s split across p PEs.
func uniqueValues(seed int64, n, p int) ([][]uint64, []uint64) {
	rng := xrand.New(seed)
	seen := map[uint64]bool{}
	global := make([]uint64, 0, n)
	for len(global) < n {
		v := rng.Uint64() % uint64(16*n)
		if !seen[v] {
			seen[v] = true
			global = append(global, v)
		}
	}
	parts := make([][]uint64, p)
	for i, v := range global {
		parts[i%p] = append(parts[i%p], v)
	}
	sorted := slices.Clone(global)
	slices.Sort(sorted)
	return parts, sorted
}

func TestInsertIsLocal(t *testing.T) {
	const p = 4
	m := comm.NewMachine(comm.DefaultConfig(p))
	m.MustRun(func(pe *comm.PE) {
		q := New[uint64](pe, 1)
		for i := 0; i < 100; i++ {
			q.Insert(uint64(pe.Rank()*1000 + i))
		}
		if q.LocalLen() != 100 {
			t.Errorf("LocalLen = %d", q.LocalLen())
		}
	})
	// The whole point of Section 5: insertion costs zero communication.
	if s := m.Stats(); s.TotalWords != 0 || s.TotalSends != 0 {
		t.Errorf("insertions communicated: %+v", s)
	}
}

func TestGlobalLenAndPeekMin(t *testing.T) {
	const p = 5
	parts, sorted := uniqueValues(3, 500, p)
	m := comm.NewMachine(comm.DefaultConfig(p))
	m.MustRun(func(pe *comm.PE) {
		q := New[uint64](pe, 2)
		q.InsertBulk(parts[pe.Rank()])
		if got := q.GlobalLen(); got != 500 {
			t.Errorf("GlobalLen = %d", got)
		}
		mn, ok := q.PeekMin()
		if !ok || mn != sorted[0] {
			t.Errorf("PeekMin = %d,%v want %d", mn, ok, sorted[0])
		}
	})
}

func TestPeekMinEmpty(t *testing.T) {
	m := comm.NewMachine(comm.DefaultConfig(3))
	m.MustRun(func(pe *comm.PE) {
		q := New[uint64](pe, 4)
		if _, ok := q.PeekMin(); ok {
			t.Error("PeekMin on empty queue returned ok")
		}
	})
}

func TestDeleteMinExactBatches(t *testing.T) {
	for _, p := range []int{1, 2, 4, 7} {
		parts, sorted := uniqueValues(5, 1000, p)
		m := comm.NewMachine(comm.DefaultConfig(p))
		batches := make([][][]uint64, 4) // batches[b][rank]
		for b := range batches {
			batches[b] = make([][]uint64, p)
		}
		m.MustRun(func(pe *comm.PE) {
			q := New[uint64](pe, 6)
			q.InsertBulk(parts[pe.Rank()])
			for b := 0; b < 4; b++ {
				batches[b][pe.Rank()] = q.DeleteMin(100)
			}
			if got := q.GlobalLen(); got != 600 {
				t.Errorf("p=%d: after 4x100 deletions GlobalLen = %d", p, got)
			}
		})
		// Each batch must be exactly the next 100 smallest global elements.
		for b := 0; b < 4; b++ {
			var all []uint64
			for _, share := range batches[b] {
				all = append(all, share...)
			}
			slices.Sort(all)
			want := sorted[b*100 : (b+1)*100]
			if !slices.Equal(all, want) {
				t.Errorf("p=%d batch %d: wrong contents (%d elements)", p, b, len(all))
			}
		}
	}
}

func TestDeleteMinDrainsEverything(t *testing.T) {
	const p = 3
	parts, sorted := uniqueValues(7, 100, p)
	m := comm.NewMachine(comm.DefaultConfig(p))
	out := make([][]uint64, p)
	m.MustRun(func(pe *comm.PE) {
		q := New[uint64](pe, 8)
		q.InsertBulk(parts[pe.Rank()])
		out[pe.Rank()] = q.DeleteMin(1 << 30) // way more than present
		if q.GlobalLen() != 0 {
			t.Error("queue not empty after over-sized DeleteMin")
		}
		if got := q.DeleteMin(10); got != nil {
			t.Errorf("DeleteMin on empty queue returned %v", got)
		}
	})
	var all []uint64
	for _, s := range out {
		all = append(all, s...)
	}
	slices.Sort(all)
	if !slices.Equal(all, sorted) {
		t.Error("drained contents differ from inserted")
	}
}

func TestDeleteMinFlexible(t *testing.T) {
	for _, p := range []int{1, 3, 6} {
		parts, sorted := uniqueValues(9, 800, p)
		m := comm.NewMachine(comm.DefaultConfig(p))
		shares := make([][]uint64, p)
		var count int64
		m.MustRun(func(pe *comm.PE) {
			q := New[uint64](pe, 10)
			q.InsertBulk(parts[pe.Rank()])
			share, k := q.DeleteMinFlexible(100, 200)
			shares[pe.Rank()] = share
			if pe.Rank() == 0 {
				count = k
			}
			if got := q.GlobalLen(); got != 800-k {
				t.Errorf("p=%d: GlobalLen %d after flexible delete of %d", p, got, k)
			}
		})
		if count < 100 || count > 200 {
			t.Errorf("p=%d: flexible count %d outside [100,200]", p, count)
		}
		var all []uint64
		for _, s := range shares {
			all = append(all, s...)
		}
		slices.Sort(all)
		if !slices.Equal(all, sorted[:count]) {
			t.Errorf("p=%d: flexible batch is not the %d smallest", p, count)
		}
	}
}

func TestDeleteMinFlexibleLatencyAdvantage(t *testing.T) {
	// Theorem 5: flexible batches need O(α log kp) vs O(α log² kp) exact —
	// flexible must use at most as many bottleneck startups.
	const p = 8
	parts, _ := uniqueValues(11, 8000, p)
	run := func(flexible bool) int64 {
		m := comm.NewMachine(comm.DefaultConfig(p))
		// Insertions are local (zero communication), so measuring the whole
		// run isolates the deleteMin* cost.
		m.MustRun(func(pe *comm.PE) {
			q := New[uint64](pe, 12)
			q.InsertBulk(parts[pe.Rank()])
			if flexible {
				q.DeleteMinFlexible(1000, 2000)
			} else {
				q.DeleteMin(1000)
			}
		})
		return m.Stats().MaxSends
	}
	exact, flex := run(false), run(true)
	if flex > exact {
		t.Errorf("flexible deleteMin* used more startups (%d) than exact (%d)", flex, exact)
	}
}

func TestInterleavedInsertDelete(t *testing.T) {
	// Mixed workload against a sequential reference model.
	const p = 4
	const rounds = 6
	m := comm.NewMachine(comm.DefaultConfig(p))
	rng := xrand.New(13)
	// Pre-generate per-round insertions (globally unique).
	ins := make([][][]uint64, rounds) // ins[round][rank]
	var model []uint64
	seen := map[uint64]bool{}
	for r := range ins {
		ins[r] = make([][]uint64, p)
		for pe := 0; pe < p; pe++ {
			for i := 0; i < 50; i++ {
				v := rng.Uint64() % 1000000
				if seen[v] {
					continue
				}
				seen[v] = true
				ins[r][pe] = append(ins[r][pe], v)
			}
		}
	}
	got := make([][][]uint64, rounds)
	for r := range got {
		got[r] = make([][]uint64, p)
	}
	m.MustRun(func(pe *comm.PE) {
		q := New[uint64](pe, 14)
		for r := 0; r < rounds; r++ {
			q.InsertBulk(ins[r][pe.Rank()])
			got[r][pe.Rank()] = q.DeleteMin(30)
		}
	})
	// Replay on the reference model.
	for r := 0; r < rounds; r++ {
		for peRank := 0; peRank < p; peRank++ {
			model = append(model, ins[r][peRank]...)
		}
		slices.Sort(model)
		take := min(30, len(model))
		want := model[:take]
		model = slices.Clone(model[take:])
		var all []uint64
		for _, s := range got[r] {
			all = append(all, s...)
		}
		slices.Sort(all)
		if !slices.Equal(all, want) {
			t.Fatalf("round %d: batch mismatch (got %d want %d elements)", r, len(all), len(want))
		}
	}
}

func TestBatchesAreMonotone(t *testing.T) {
	// Every element of batch i must precede every element of batch i+1.
	const p = 4
	const rounds = 3
	parts, _ := uniqueValues(15, 600, p)
	m := comm.NewMachine(comm.DefaultConfig(p))
	shares := make([][][]uint64, rounds)
	for b := range shares {
		shares[b] = make([][]uint64, p)
	}
	m.MustRun(func(pe *comm.PE) {
		q := New[uint64](pe, 16)
		q.InsertBulk(parts[pe.Rank()])
		for b := 0; b < rounds; b++ {
			share, _ := q.DeleteMinFlexible(50, 120)
			shares[b][pe.Rank()] = share
		}
	})
	prevMax := uint64(0)
	for b := 0; b < rounds; b++ {
		var all []uint64
		for _, s := range shares[b] {
			all = append(all, s...)
		}
		if len(all) == 0 {
			t.Fatalf("batch %d empty", b)
		}
		if b > 0 && slices.Min(all) <= prevMax {
			t.Errorf("batch %d overlaps batch %d", b, b-1)
		}
		prevMax = slices.Max(all)
	}
}

func TestMakeUnique(t *testing.T) {
	// Distinct (seq, rank) pairs must give distinct keys; priority must
	// dominate the ordering.
	seenKeys := map[uint64]bool{}
	for seq := uint32(0); seq < 100; seq++ {
		for rank := 0; rank < 8; rank++ {
			k := MakeUnique(5, seq, rank, 8)
			if seenKeys[k] {
				t.Fatalf("duplicate key for seq=%d rank=%d", seq, rank)
			}
			seenKeys[k] = true
		}
	}
	if MakeUnique(1, 4000, 7, 8) >= MakeUnique(2, 0, 0, 8) {
		t.Error("priority must dominate the stamp")
	}
}
