// Package bpq implements the communication-efficient bulk-parallel
// priority queue of Section 5: one local search tree per PE, insertions
// that are purely local (no elements ever move between PEs), and bulk
// deleteMin* realized by running the multisequence selection algorithms of
// Section 4 directly on the search trees.
//
// Operation costs (Theorem 5):
//
//	Insert          O(log n) local, zero communication
//	DeleteMin(k)    O(α log² kp) expected (exact batch size)
//	DeleteMinFlexible(k̲, k̄)  O(α log k̄p) expected when k̄−k̲ = Ω(k̄)
//
// Keys must be globally unique (the paper's standing assumption; compose
// a PE-id/sequence-number tie-break into the key as MakeUnique does).
package bpq

import (
	"cmp"

	"commtopk/internal/coll"
	"commtopk/internal/comm"
	"commtopk/internal/sel"
	"commtopk/internal/treap"
	"commtopk/internal/xrand"
)

// Queue is one PE's handle of the distributed bulk priority queue. All
// PEs of the machine must create their handle with the same seed, and the
// collective operations (GlobalLen, DeleteMin, DeleteMinFlexible) must be
// entered by every PE.
type Queue[K cmp.Ordered] struct {
	pe     *comm.PE
	tree   *treap.Tree[K]
	seq    sel.Seq[K] // treapSeq over tree, boxed once (the tree pointer is stable)
	rng    *xrand.RNG // per-PE stream (AMS estimator deviates)
	shared *xrand.RNG // lockstep stream shared across PEs (exact pivots)
}

// New creates this PE's handle. seed must be identical on all PEs; the
// per-PE streams are decorrelated internally.
func New[K cmp.Ordered](pe *comm.PE, seed int64) *Queue[K] {
	q := &Queue[K]{
		pe:     pe,
		tree:   treap.New[K](seed + int64(pe.Rank())*7919),
		rng:    xrand.NewPE(seed, pe.Rank()),
		shared: xrand.New(seed),
	}
	q.seq = treapSeq[K]{q.tree}
	return q
}

// Insert adds a key to the local queue — no communication, O(log n)
// (Section 5: "insertions simply go to the local queue"). Returns false
// if the key is already present locally.
func (q *Queue[K]) Insert(k K) bool { return q.tree.Insert(k) }

// InsertBulk inserts a batch locally and returns the number inserted.
func (q *Queue[K]) InsertBulk(ks []K) int { return q.tree.InsertBulk(ks) }

// LocalLen returns the number of elements held by this PE.
func (q *Queue[K]) LocalLen() int { return q.tree.Len() }

// GlobalLen returns the total queue size. Collective.
func (q *Queue[K]) GlobalLen() int64 {
	return coll.SumAll(q.pe, int64(q.tree.Len()))
}

// PeekMin returns the globally smallest key without removing it.
// Collective; ok is false when the queue is globally empty. The min
// operator is a per-PE singleton (see pqOps), so steady-state calls do
// not allocate.
func (q *Queue[K]) PeekMin() (K, bool) {
	st := newPeekMinStep(q, nil, false)
	comm.RunSteps(q.pe, st)
	res := st.res
	st.release(q.pe)
	return res.Val, res.Has
}

// treapSeq adapts the local search tree to the Seq interface of the
// selection algorithms — the Section 5 observation that selection needs
// only select-by-rank and rank-by-key, which the augmented tree provides
// in logarithmic time.
type treapSeq[K cmp.Ordered] struct{ t *treap.Tree[K] }

func (s treapSeq[K]) Len() int { return s.t.Len() }
func (s treapSeq[K]) At(i int) K {
	v, ok := s.t.Select(i)
	if !ok {
		panic("bpq: Select out of range")
	}
	return v
}
func (s treapSeq[K]) CountLess(v K) int { return s.t.Rank(v) }
func (s treapSeq[K]) CountLE(v K) int {
	r := s.t.Rank(v)
	if s.t.Contains(v) {
		r++
	}
	return r
}

// DeleteMin removes the k globally smallest elements and returns this
// PE's share of them in ascending order (the batch stays where it was
// stored — the owner-computes rule). If fewer than k elements remain, all
// are removed. Collective.
func (q *Queue[K]) DeleteMin(k int64) []K {
	st := newDeleteMinStep(q, k, k, false, nil, false)
	comm.RunSteps(q.pe, st)
	out := st.resBatch
	st.release(q.pe)
	return out
}

// DeleteMinFlexible removes the k globally smallest elements for some
// k ∈ [kmin, kmax] chosen by the flexible selection (Algorithm 2) and
// returns this PE's share plus the realized k. If fewer than kmin remain,
// everything is removed. Collective.
func (q *Queue[K]) DeleteMinFlexible(kmin, kmax int64) ([]K, int64) {
	st := newDeleteMinStep(q, kmin, kmax, true, nil, false)
	comm.RunSteps(q.pe, st)
	out, n := st.resBatch, st.resN
	st.release(q.pe)
	return out, n
}

// MakeUnique composes a priority quantized to 32 bits with a globally
// unique stamp so that distinct queue entries never share a key: the high
// word is the priority, the low word is seq·P + rank, which is unique as
// long as each PE stamps its insertions with its own ascending seq.
// Entries with equal priority are ordered by stamp — the paper's (v, x)
// tie-breaking trick.
func MakeUnique(prio uint32, seq uint32, rank, p int) uint64 {
	return uint64(prio)<<32 | (uint64(seq)*uint64(p)+uint64(rank))&0xffffffff
}
