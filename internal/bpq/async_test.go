package bpq

import (
	"fmt"
	"slices"
	"testing"

	"commtopk/internal/comm"
)

// churnResult is everything one schedule produces on one machine: the
// per-round, per-rank batches plus the realized sizes and final state.
type churnResult struct {
	batches [][][]uint64 // [round][rank]
	ns      [][]int64    // [round][rank] realized size as reported
	lens    []int64      // GlobalLen after each round
	stats   comm.Stats
}

// runChurn executes the same insert/delete schedule on a fresh set of
// queue handles over m, using either the blocking forms (async=false) or
// the stepper forms under RunAsync (async=true). Inserts are local and
// happen in a plain blocking run either way — the A/B difference is only
// in how the collective deletes execute.
func runChurn(m *comm.Machine, p int, async bool) churnResult {
	const perPE = 64
	qs := make([]*Queue[uint64], p)
	m.MustRun(func(pe *comm.PE) {
		r := pe.Rank()
		qs[r] = New[uint64](pe, 4242)
		keys := make([]uint64, perPE)
		for i := range keys {
			keys[i] = uint64(i*p + r)
		}
		qs[r].InsertBulk(keys)
	})
	var res churnResult
	next := perPE // next fresh key block, shared by all rounds
	// Rounds: exact batch, flexible batch, exact again after refill, and
	// a final drain (k far above the remaining total).
	type round struct {
		kmin, kmax int64
		flex       bool
		refill     int
	}
	rounds := []round{
		{kmin: int64(p * perPE / 4), kmax: int64(p * perPE / 4)},
		{kmin: int64(p * 4), kmax: int64(p * 16), flex: true, refill: 16},
		{kmin: 3, kmax: 3, refill: 8},
		{kmin: int64(10 * p * perPE), kmax: int64(10 * p * perPE)},
	}
	for _, rd := range rounds {
		if rd.refill > 0 {
			m.MustRun(func(pe *comm.PE) {
				r := pe.Rank()
				keys := make([]uint64, rd.refill)
				for i := range keys {
					keys[i] = uint64((next+i)*p + r)
				}
				qs[r].InsertBulk(keys)
			})
			next += rd.refill
		}
		batches := make([][]uint64, p)
		ns := make([]int64, p)
		if async {
			m.MustRunAsync(func(pe *comm.PE) comm.Stepper {
				r := pe.Rank()
				out := func(batch []uint64, _ uint64, n int64) {
					batches[r], ns[r] = batch, n
				}
				if rd.flex {
					return qs[r].DeleteMinFlexibleStep(rd.kmin, rd.kmax, out)
				}
				return qs[r].DeleteMinStep(rd.kmin, out)
			})
		} else {
			m.MustRun(func(pe *comm.PE) {
				r := pe.Rank()
				if rd.flex {
					batches[r], ns[r] = qs[r].DeleteMinFlexible(rd.kmin, rd.kmax)
				} else {
					batches[r] = qs[r].DeleteMin(rd.kmin)
				}
			})
			if !rd.flex {
				// Blocking DeleteMin doesn't report the realized size; it is
				// the global batch size (k, or the whole queue on a drain).
				var tot int64
				for r := 0; r < p; r++ {
					tot += int64(len(batches[r]))
				}
				for r := 0; r < p; r++ {
					ns[r] = tot
				}
			}
		}
		lens := make([]int64, p)
		m.MustRun(func(pe *comm.PE) {
			lens[pe.Rank()] = qs[pe.Rank()].GlobalLen()
		})
		res.batches = append(res.batches, batches)
		res.ns = append(res.ns, ns)
		res.lens = append(res.lens, lens[0])
	}
	res.stats = m.Stats()
	return res
}

// The stepper-form queue ops must be bit-identical to the blocking forms
// — batches, realized sizes, and metered statistics — whether driven by
// RunAsync on the mailbox scheduler (including w < p) or by the channel
// matrix's blocking drive.
func TestDeleteMinStepMatchesBlockingAcrossBackends(t *testing.T) {
	for _, p := range []int{1, 4, 16} {
		p := p
		t.Run(fmt.Sprintf("p=%d", p), func(t *testing.T) {
			mc := comm.NewMachine(comm.MatrixConfig(p))
			ref := runChurn(mc, p, false)
			for _, w := range []int{0, 1, 4} {
				cfg := comm.MailboxConfig(p)
				cfg.Workers = w
				m := comm.NewMachine(cfg)
				got := runChurn(m, p, true)
				for rd := range ref.batches {
					for r := 0; r < p; r++ {
						if !slices.Equal(got.batches[rd][r], ref.batches[rd][r]) {
							t.Errorf("w=%d round %d rank %d: stepper batch %v vs blocking %v",
								w, rd, r, got.batches[rd][r], ref.batches[rd][r])
						}
						if got.ns[rd][r] != ref.ns[rd][r] {
							t.Errorf("w=%d round %d rank %d: realized n %d vs %d",
								w, rd, r, got.ns[rd][r], ref.ns[rd][r])
						}
					}
					if got.lens[rd] != ref.lens[rd] {
						t.Errorf("w=%d round %d: GlobalLen %d vs %d", w, rd, got.lens[rd], ref.lens[rd])
					}
				}
				if got.stats != ref.stats {
					t.Errorf("w=%d: stats diverge:\n  blocking matrix: %+v\n  stepper mailbox: %+v",
						w, ref.stats, got.stats)
				}
				m.Close()
			}
		})
	}
}

// DeleteMinStep reports the agreed threshold: every returned key is ≤ it
// and the batch sizes sum to the reported n on every PE.
func TestDeleteMinStepThresholdContract(t *testing.T) {
	const p, perPE = 8, 32
	m := comm.NewMachine(comm.MailboxConfig(p))
	defer m.Close()
	qs := make([]*Queue[uint64], p)
	m.MustRun(func(pe *comm.PE) {
		r := pe.Rank()
		qs[r] = New[uint64](pe, 7)
		keys := make([]uint64, perPE)
		for i := range keys {
			keys[i] = uint64(i*p + r)
		}
		qs[r].InsertBulk(keys)
	})
	k := int64(p * perPE / 3)
	batches := make([][]uint64, p)
	vs := make([]uint64, p)
	ns := make([]int64, p)
	m.MustRunAsync(func(pe *comm.PE) comm.Stepper {
		r := pe.Rank()
		return qs[r].DeleteMinStep(k, func(batch []uint64, v uint64, n int64) {
			batches[r], vs[r], ns[r] = batch, v, n
		})
	})
	var got int64
	for r := 0; r < p; r++ {
		if vs[r] != vs[0] || ns[r] != k {
			t.Fatalf("rank %d: (threshold, n) = (%d, %d), want (%d, %d)", r, vs[r], ns[r], vs[0], k)
		}
		for _, key := range batches[r] {
			if key > vs[r] {
				t.Fatalf("rank %d: batch key %d above threshold %d", r, key, vs[r])
			}
		}
		got += int64(len(batches[r]))
	}
	if got != k {
		t.Fatalf("batch sizes sum to %d, want %d", got, k)
	}
}

// PeekMin must not allocate in steady state: the reduction operator is a
// per-PE singleton, not a fresh funcval per call (which previously cost
// one heap allocation per PeekMin per PE).
func TestPeekMinZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race (sync.Pool is randomized)")
	}
	const p, iters = 8, 50
	m := comm.NewMachine(comm.MailboxConfig(p))
	defer m.Close()
	qs := make([]*Queue[uint64], p)
	m.MustRun(func(pe *comm.PE) {
		r := pe.Rank()
		qs[r] = New[uint64](pe, 13)
		for i := 0; i < 64; i++ {
			qs[r].Insert(uint64(i*p + r))
		}
	})
	run := func() {
		m.MustRun(func(pe *comm.PE) {
			q := qs[pe.Rank()]
			for i := 0; i < iters; i++ {
				if _, ok := q.PeekMin(); !ok {
					t.Error("PeekMin reported empty on a full queue")
				}
			}
		})
	}
	base := testing.AllocsPerRun(5, func() { m.MustRun(func(pe *comm.PE) {}) })
	for i := 0; i < 3; i++ {
		run() // warm the pools
	}
	peek := testing.AllocsPerRun(5, run)
	// iters×p funcval allocations before the fix; only run-harness noise now.
	if peek-base > float64(2*p) {
		t.Errorf("PeekMin loop allocates %.1f/run over the %.1f harness baseline (budget %d)",
			peek, base, 2*p)
	}
}
