//go:build !race

package bpq

const raceEnabled = false
