//go:build race

package bpq

// raceEnabled gates the allocation-count guards: the race runtime
// deliberately randomizes sync.Pool behavior (dropping items to stress
// code paths), so per-op allocation counts are meaningless under -race.
const raceEnabled = true
