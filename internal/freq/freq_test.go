package freq

import (
	"testing"

	"commtopk/internal/comm"
	"commtopk/internal/dht"
	"commtopk/internal/gen"
	"commtopk/internal/stats"
	"commtopk/internal/xrand"
)

// zipfWorkload builds the Section 10.2 workload: per-PE Zipf(s=1) streams
// over a shared universe.
func zipfWorkload(seed int64, p, perPE, universe int) ([][]uint64, map[uint64]int64) {
	z := gen.NewZipf(universe, 1)
	locals := make([][]uint64, p)
	exact := map[uint64]int64{}
	for r := 0; r < p; r++ {
		locals[r] = gen.FrequencyInput(xrand.NewPE(seed, r), z, perPE)
		for _, x := range locals[r] {
			exact[x]++
		}
	}
	return locals, exact
}

func totalOf(exact map[uint64]int64) int64 {
	var n int64
	for _, c := range exact {
		n += c
	}
	return n
}

func keysOf(items []dht.KV) []uint64 {
	out := make([]uint64, len(items))
	for i, it := range items {
		out[i] = it.Key
	}
	return out
}

type algo struct {
	name string
	run  func(pe *comm.PE, local []uint64, p Params, rng *xrand.RNG) Result
}

var allAlgos = []algo{
	{"PAC", PAC},
	{"EC", EC},
	{"ECSBF", ECSBF},
	{"Naive", Naive},
	{"NaiveTree", NaiveTree},
}

func TestAllAlgorithmsMeetEpsilonOnZipf(t *testing.T) {
	const perPE = 4000
	for _, p := range []int{1, 4, 7} {
		locals, exact := zipfWorkload(17, p, perPE, 1<<12)
		n := totalOf(exact)
		params := Params{K: 8, Eps: 0.01, Delta: 0.01}
		for _, a := range allAlgos {
			m := comm.NewMachine(comm.DefaultConfig(p))
			var res Result
			m.MustRun(func(pe *comm.PE) {
				r := a.run(pe, locals[pe.Rank()], params, xrand.NewPE(23, pe.Rank()))
				if pe.Rank() == 0 {
					res = r
				}
			})
			if len(res.Items) != params.K {
				t.Errorf("%s p=%d: returned %d items, want %d", a.name, p, len(res.Items), params.K)
				continue
			}
			errTilde := stats.EpsTilde(exact, keysOf(res.Items), n)
			if errTilde > params.Eps {
				t.Errorf("%s p=%d: ε̃=%v exceeds ε=%v", a.name, p, errTilde, params.Eps)
			}
		}
	}
}

func TestECCountsAreExact(t *testing.T) {
	const p = 4
	locals, exact := zipfWorkload(29, p, 3000, 1<<10)
	m := comm.NewMachine(comm.DefaultConfig(p))
	var res Result
	m.MustRun(func(pe *comm.PE) {
		r := EC(pe, locals[pe.Rank()], Params{K: 5, Eps: 0.01, Delta: 0.01}, xrand.NewPE(31, pe.Rank()))
		if pe.Rank() == 0 {
			res = r
		}
	})
	if !res.Exact {
		t.Fatal("EC result not marked exact")
	}
	for _, it := range res.Items {
		if exact[it.Key] != it.Count {
			t.Errorf("key %d: EC count %d, true count %d", it.Key, it.Count, exact[it.Key])
		}
	}
	if res.KStar < 5 {
		t.Errorf("KStar = %d < k", res.KStar)
	}
}

func TestECSampleSmallerThanPACForTightEps(t *testing.T) {
	// The Figure 8 regime: ε so small that PAC must sample everything
	// while EC still samples sparsely. (The paper uses ε=1e-6 at n=2^39;
	// scaled to our n=20000 the same crossover appears at ε=0.01, where
	// PAC's ε⁻² sample exceeds n but EC's ε⁻¹ sample does not.)
	const p = 4
	const perPE = 5000
	locals, _ := zipfWorkload(37, p, perPE, 1<<10)
	params := Params{K: 8, Eps: 0.01, Delta: 0.01}
	var pacSample, ecSample int64
	m := comm.NewMachine(comm.DefaultConfig(p))
	m.MustRun(func(pe *comm.PE) {
		r1 := PAC(pe, locals[pe.Rank()], params, xrand.NewPE(41, pe.Rank()))
		r2 := EC(pe, locals[pe.Rank()], params, xrand.NewPE(43, pe.Rank()))
		if pe.Rank() == 0 {
			pacSample, ecSample = r1.SampleSize, r2.SampleSize
		}
	})
	if pacSample < int64(p*perPE) {
		t.Errorf("PAC sample %d should be the full input %d at ε=1e-6", pacSample, p*perPE)
	}
	if ecSample >= pacSample {
		t.Errorf("EC sample %d not smaller than PAC's %d", ecSample, pacSample)
	}
}

func TestPECExactOnGappedDistribution(t *testing.T) {
	// Figure 5 scenario: clear gap between the top-k head and the tail.
	const p = 4
	freqTable := gen.GappedFrequencies(6, 400, 600, 5)
	stream := gen.Materialize(xrand.New(47), freqTable)
	locals := make([][]uint64, p)
	for i, x := range stream {
		locals[i%p] = append(locals[i%p], x)
	}
	n := int64(len(stream))
	m := comm.NewMachine(comm.DefaultConfig(p))
	var res Result
	m.MustRun(func(pe *comm.PE) {
		r := PEC(pe, locals[pe.Rank()], Params{K: 6, Eps: 0.05, Delta: 0.01}, 0.05, xrand.NewPE(53, pe.Rank()))
		if pe.Rank() == 0 {
			res = r
		}
	})
	if !res.Exact {
		t.Fatal("PEC did not detect the gap")
	}
	if e := stats.EpsTilde(freqTable, keysOf(res.Items), n); e != 0 {
		t.Errorf("PEC result not exact: ε̃=%v", e)
	}
	for _, it := range res.Items {
		if freqTable[it.Key] != it.Count {
			t.Errorf("key %d count %d, want %d", it.Key, it.Count, freqTable[it.Key])
		}
	}
}

func TestPECFallsBackOnFlatDistribution(t *testing.T) {
	// Near-uniform input: no gap, PEC must degrade gracefully.
	const p = 3
	locals := make([][]uint64, p)
	rng := xrand.New(59)
	for r := 0; r < p; r++ {
		for i := 0; i < 3000; i++ {
			locals[r] = append(locals[r], uint64(rng.Intn(500)))
		}
	}
	m := comm.NewMachine(comm.DefaultConfig(p))
	var res Result
	m.MustRun(func(pe *comm.PE) {
		r := PEC(pe, locals[pe.Rank()], Params{K: 5, Eps: 0.05, Delta: 0.01}, 0.2, xrand.NewPE(61, pe.Rank()))
		if pe.Rank() == 0 {
			res = r
		}
	})
	if len(res.Items) != 5 {
		t.Errorf("fallback returned %d items", len(res.Items))
	}
}

func TestPECZipf(t *testing.T) {
	const p = 4
	const universe = 1 << 10
	locals, exact := zipfWorkload(67, p, 8000, universe)
	n := totalOf(exact)
	m := comm.NewMachine(comm.DefaultConfig(p))
	var res Result
	m.MustRun(func(pe *comm.PE) {
		r := PECZipf(pe, locals[pe.Rank()], 4, 1.0, universe, 0.01, xrand.NewPE(71, pe.Rank()))
		if pe.Rank() == 0 {
			res = r
		}
	})
	if !res.Exact {
		t.Fatal("PECZipf not exact-counted")
	}
	if e := stats.EpsTilde(exact, keysOf(res.Items), n); e > 0.001 {
		t.Errorf("PECZipf ε̃=%v", e)
	}
	// Theorem 14: k* ≈ 3.41k for s=1.
	if res.KStar < 8 || res.KStar > 20 {
		t.Errorf("KStar = %d, want ≈ 3.41·4", res.KStar)
	}
}

func TestNaiveCoordinatorBottleneck(t *testing.T) {
	// The evaluation's point: Naive's coordinator receives Θ(p) messages;
	// PAC's bottleneck stays logarithmic-ish.
	const p = 16
	locals, _ := zipfWorkload(73, p, 2000, 1<<10)
	params := Params{K: 8, Eps: 0.02, Delta: 0.01}
	run := func(a algo) int64 {
		m := comm.NewMachine(comm.DefaultConfig(p))
		m.MustRun(func(pe *comm.PE) {
			a.run(pe, locals[pe.Rank()], params, xrand.NewPE(79, pe.Rank()))
		})
		return m.Stats().MaxRecvWords
	}
	naive := run(algo{"Naive", Naive})
	pac := run(algo{"PAC", PAC})
	if pac >= naive {
		t.Errorf("PAC bottleneck volume %d not below Naive's %d", pac, naive)
	}
}

func TestExactTopK(t *testing.T) {
	const p = 5
	locals, exact := zipfWorkload(83, p, 1000, 1<<8)
	want := stats.TopKOf(exact, 10)
	m := comm.NewMachine(comm.DefaultConfig(p))
	m.MustRun(func(pe *comm.PE) {
		got := ExactTopK(pe, locals[pe.Rank()], 10, dht.RouteHypercube, xrand.NewPE(89, pe.Rank()))
		if len(got) != 10 {
			t.Fatalf("ExactTopK returned %d items", len(got))
		}
		for i, it := range got {
			if exact[it.Key] != it.Count {
				t.Errorf("item %d: count %d, want %d", i, it.Count, exact[it.Key])
			}
		}
		// Count multiset must match the true top-10 counts (keys may
		// differ on ties).
		for i := range got {
			if got[i].Count != exact[want[i]] {
				t.Errorf("rank %d: count %d, want %d", i, got[i].Count, exact[want[i]])
			}
		}
	})
}

func TestSelectTopKTieSplitting(t *testing.T) {
	// Many keys with equal counts: exactly k must come back.
	const p = 4
	m := comm.NewMachine(comm.DefaultConfig(p))
	m.MustRun(func(pe *comm.PE) {
		shard := map[uint64]int64{}
		for i := 0; i < 50; i++ {
			shard[uint64(pe.Rank()*1000+i)] = 7 // all tied
		}
		got := dht.SelectTopK(pe, shard, 33, xrand.NewPE(97, pe.Rank()))
		if len(got) != 33 {
			t.Errorf("tie splitting returned %d items, want 33", len(got))
		}
	})
}

func TestSelectTopKFewerThanK(t *testing.T) {
	const p = 3
	m := comm.NewMachine(comm.DefaultConfig(p))
	m.MustRun(func(pe *comm.PE) {
		shard := map[uint64]int64{uint64(pe.Rank()): int64(pe.Rank() + 1)}
		got := dht.SelectTopK(pe, shard, 10, xrand.NewPE(101, pe.Rank()))
		if len(got) != p {
			t.Errorf("got %d items, want all %d", len(got), p)
		}
		if got[0].Key != p-1 {
			t.Errorf("wrong order: %v", got)
		}
	})
}

func TestParamsValidation(t *testing.T) {
	m := comm.NewMachine(comm.DefaultConfig(1))
	err := m.Run(func(pe *comm.PE) {
		PAC(pe, []uint64{1}, Params{K: 0, Eps: 0.1, Delta: 0.1}, xrand.New(1))
	})
	if err == nil {
		t.Error("K=0 should panic")
	}
}
