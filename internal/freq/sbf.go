package freq

import (
	"sort"

	"commtopk/internal/coll"
	"commtopk/internal/comm"
	"commtopk/internal/dht"
	"commtopk/internal/stats"
	"commtopk/internal/xrand"
)

// ECSBF is EC with the distributed single-shot Bloom filter refinement of
// Section 7.4: the sample is counted as (hash, count) cells (one machine
// word each instead of two), the top k*+κ cells are selected, their keys
// are resolved (splitting hash collisions), and the top k* resolved keys
// are counted exactly. If the resolved set is too small because of
// collisions, κ is doubled and the selection retried, as the paper
// prescribes. Collective.
func ECSBF(pe *comm.PE, local []uint64, p Params, rng *xrand.RNG) Result {
	p.validate()
	n := coll.SumAll(pe, int64(len(local)))
	kStar := p.KStarOverride
	if kStar <= 0 {
		kStar = stats.OptimalKStar(n, p.K, pe.P(), p.Eps, p.Delta)
	}
	rho := min(1, stats.ECSampleSize(n, kStar, p.Eps, p.Delta)/float64(n))

	agg := sampleCounts(local, rho, rng)
	sampleSize := coll.SumAll(pe, agg.Total())
	sbf := dht.BuildSBF(pe, agg)
	defer sbf.Release()
	agg.Release()

	kappa := kStar/2 + 8
	var resolved []dht.KV
	for attempt := 0; attempt < 4; attempt++ {
		cells := selectTopCells(pe, sbf.Cells, kStar+kappa, rng)
		resolved = sbf.Resolve(cells)
		if len(resolved) >= kStar || len(cells) < kStar+kappa {
			// Enough keys resolved, or the filter is exhausted.
			break
		}
		kappa *= 2
	}
	sort.Slice(resolved, func(i, j int) bool {
		if resolved[i].Count != resolved[j].Count {
			return resolved[i].Count > resolved[j].Count
		}
		return resolved[i].Key < resolved[j].Key
	})
	if len(resolved) > kStar {
		resolved = resolved[:kStar]
	}
	exact := countExactly(pe, local, candidateKeys(resolved))
	if len(exact) > p.K {
		exact = exact[:p.K]
	}
	return Result{Items: exact, SampleSize: sampleSize, Rho: rho, KStar: kStar, Exact: true}
}

// selectTopCells picks the m cells with the highest counts from the
// distributed cell table (all PEs receive the same cell list). The cell
// table already keys cells as uint64, so selection runs directly on it —
// no staging copy, and no map iteration anywhere on the path: the
// table's slot order is fixed by its (deterministic) insertion sequence,
// so the selection's pivot sampling draws the same RNG stream on every
// run and under any serve interleaving. Collective.
func selectTopCells(pe *comm.PE, cells *dht.Table, m int, rng *xrand.RNG) []uint32 {
	// Selection hashes by dht.Owner; ownership differs from cellOwner but
	// correctness only needs *some* consistent sharding, which re-sharding
	// through CountKeys would provide — yet the counts here are already
	// global (each cell lives on exactly one PE), so selection can run
	// directly on the local tables.
	top := dht.SelectTopKTable(pe, cells, m, rng)
	out := make([]uint32, len(top))
	for i, kv := range top {
		out[i] = uint32(kv.Key)
	}
	return out
}
