// Package freq implements the top-k most frequent objects algorithms of
// Section 7 of the paper and the two centralized baselines of the
// evaluation (Section 10.2):
//
//   - PAC — the basic probably-approximately-correct algorithm
//     (Section 7.1, Theorem 7): Bernoulli sampling, distributed hashing,
//     unsorted selection on sample counts. Sample size Θ(ε⁻² log(k/δ)).
//   - EC — exact counting of the k* most frequently sampled objects
//     (Section 7.2, Theorem 11): sample size Θ(ε⁻¹ ...) with the
//     communication-optimal k*.
//   - PEC — probably exactly correct for gapped distributions
//     (Section 7.3, Lemma 12/Theorem 13) and the Zipf closed form
//     (Theorem 14).
//   - Naive / NaiveTree — the evaluation's centralized baselines: same
//     sample, but gathered at a coordinator (directly, resp. via an
//     aggregating tree reduction).
//
// All algorithms are SPMD collectives over the machine in internal/comm.
package freq

import (
	"fmt"
	"math"
	"slices"

	"commtopk/internal/coll"
	"commtopk/internal/comm"
	"commtopk/internal/dht"
	"commtopk/internal/gen"
	"commtopk/internal/stats"
	"commtopk/internal/xrand"
)

// Params configures a frequent-objects query.
type Params struct {
	// K is the number of objects to return.
	K int
	// Eps is the relative error bound ε (error is measured in units of n,
	// the paper's ε̃ definition).
	Eps float64
	// Delta is the failure probability δ.
	Delta float64
	// Route selects DHT insertion routing (default hypercube).
	Route dht.RouteMode
	// KStarOverride, if positive, fixes EC's exactly-counted candidate
	// count instead of the volume-optimal choice of Theorem 11.
	KStarOverride int
}

func (p Params) validate() {
	if p.K < 1 || p.Eps <= 0 || p.Delta <= 0 || p.Delta >= 1 {
		panic(fmt.Sprintf("freq: invalid params %+v", p))
	}
}

// Result is the outcome of a frequent-objects query; identical on all PEs.
type Result struct {
	// Items are the top-k objects, most frequent first. Counts are
	// estimates scaled by 1/ρ unless Exact is true.
	Items []dht.KV
	// SampleSize is the realized global sample size.
	SampleSize int64
	// Rho is the sampling probability used.
	Rho float64
	// KStar is the exactly counted candidate count (EC/PEC; 0 for PAC).
	KStar int
	// Exact reports whether Items carry exact global counts.
	Exact bool
}

// sampleCounts draws a Bernoulli(rho) sample of the local input and
// aggregates it by key (the Section 7.4 local-aggregation refinement)
// into a pooled count table the caller must Release. The input scan
// order fixes both the RNG consumption and the table's iteration order,
// so downstream candidate sets are deterministic per seed.
func sampleCounts(local []uint64, rho float64, rng *xrand.RNG) *dht.Table {
	agg := dht.NewTable(0)
	if rho >= 1 {
		for _, x := range local {
			agg.Add(x, 1)
		}
		return agg
	}
	s := xrand.NewSkipSampler(rng, rho)
	for idx := s.Next(); idx < int64(len(local)); idx = s.Next() {
		agg.Add(local[idx], 1)
	}
	return agg
}

// countShard routes a sampled count table into the DHT and returns the
// owned shard as a pooled table (caller releases). The KV staging buffer
// is per-PE scratch, so a steady-state query allocates only in the
// routing collective itself.
func countShard(pe *comm.PE, agg *dht.Table, route dht.RouteMode) *dht.Table {
	items := comm.ScratchSlice[dht.KV](pe, "freq.count.items", agg.Len())[:0]
	return dht.CountKV(pe, agg.AppendKVs(items), route)
}

// PAC computes an (ε, δ)-approximation of the top-k most frequent objects
// (Section 7.1). Expected time O(n/p·ρ + β·(log p/(pε²))·log(k/δ) + α log n).
// Collective. Blocking driver over the same state machine PACStep
// exposes for comm.RunAsync.
func PAC(pe *comm.PE, local []uint64, p Params, rng *xrand.RNG) Result {
	st := newPACStep(pe, local, p, rng, nil, false)
	comm.RunSteps(pe, st)
	res := st.res
	st.release(pe)
	return res
}

// EC computes an (ε, δ)-approximation using exact counting of the k* most
// frequently sampled objects (Section 7.2, Theorem 11): smaller sample
// (linear in 1/ε), two extra all-gather/reduction rounds, local counting
// pass. Collective. Blocking driver over the ECStep state machine.
func EC(pe *comm.PE, local []uint64, p Params, rng *xrand.RNG) Result {
	st := newECStep(pe, local, p, 0, 0, false, rng, nil, false)
	comm.RunSteps(pe, st)
	res := st.res
	st.release(pe)
	return res
}

// ecCore is the shared EC machinery with caller-fixed k* and ρ: sample
// at rho, select the kStar most sampled, count them exactly, return the
// exact top-k among them.
func ecCore(pe *comm.PE, local []uint64, p Params, kStar int, rho float64, rng *xrand.RNG) Result {
	st := newECStep(pe, local, p, kStar, rho, true, rng, nil, false)
	comm.RunSteps(pe, st)
	res := st.res
	st.release(pe)
	return res
}

func candidateKeys(items []dht.KV) []uint64 {
	keys := make([]uint64, len(items))
	for i, it := range items {
		keys[i] = it.Key
	}
	slices.Sort(keys)
	return slices.Compact(keys)
}

// countExactly counts the given candidate keys exactly over the whole
// input: the identities travel by all-gather (already done by the caller's
// selection), each PE scans its local input once (O(n/p)), and a
// vector-valued sum reduction produces global counts on all PEs —
// O(β·k* + α log p) communication. The keys slice must be identical on
// all PEs. Results are sorted by count descending.
func countExactly(pe *comm.PE, local []uint64, keys []uint64) []dht.KV {
	if len(keys) == 0 {
		return nil
	}
	// Candidate index as a pooled table (key → position) — the counting
	// scan is the EC query path's hottest local loop, and the open
	// addressing both avoids the Go-map churn and probes faster at these
	// sizes (k* entries).
	index := dht.NewTable(len(keys))
	for i, k := range keys {
		index.Set(k, int64(i))
	}
	counts := make([]int64, len(keys))
	for _, x := range local {
		if i, ok := index.Get(x); ok {
			counts[i]++
		}
	}
	index.Release()
	global := coll.AllReduce(pe, counts, func(a, b int64) int64 { return a + b })
	out := make([]dht.KV, len(keys))
	for i, k := range keys {
		out[i] = dht.KV{Key: k, Count: global[i]}
	}
	dht.SortKVDesc(out)
	return out
}

// PEC computes a probably exactly correct result for distributions with a
// frequency gap (Section 7.3): a first small sample (error tolerance
// eps0) estimates the distribution, Lemma 12 chooses k*, and the EC
// machinery counts those candidates exactly. If no usable gap is detected
// the first-stage sample is returned as a PAC-quality approximation
// (Exact=false), per the Section 7.4 adaptive-two-pass refinement.
// Collective.
func PEC(pe *comm.PE, local []uint64, p Params, eps0 float64, rng *xrand.RNG) Result {
	p.validate()
	if eps0 <= 0 {
		panic("freq: PEC needs a positive first-stage tolerance eps0")
	}
	n := coll.SumAll(pe, int64(len(local)))
	rho0 := min(1, stats.PACSampleSize(n, p.K, eps0, p.Delta)/float64(n))
	agg := sampleCounts(local, rho0, rng)
	stage1Size := coll.SumAll(pe, agg.Total())
	shard := countShard(pe, agg, p.Route)
	agg.Release()

	// Inspect the head of the sampled frequency distribution.
	m := max(4*p.K, 64)
	head := dht.SelectTopKTable(pe, shard, m, rng)
	shard.Release()
	countsDesc := make([]int64, len(head))
	for i, it := range head {
		countsDesc[i] = it.Count
	}
	kStar, ok := stats.PECKStarFromSample(countsDesc, p.K, p.Delta)
	if !ok {
		// No exploitable gap: return the first-stage estimate.
		top := head
		if len(top) > p.K {
			top = top[:p.K]
		}
		items := make([]dht.KV, len(top))
		for i, it := range top {
			items[i] = dht.KV{Key: it.Key, Count: int64(float64(it.Count)/rho0 + 0.5)}
		}
		return Result{Items: items, SampleSize: stage1Size, Rho: rho0, Exact: rho0 >= 1}
	}
	// Gap found: exactly count the k* head candidates (they are already
	// selected from the first sample; no second sampling pass is needed
	// because stage 1 used the conservative PAC rate).
	if kStar > len(head) {
		kStar = len(head)
	}
	exact := countExactly(pe, local, candidateKeys(head[:kStar]))
	if len(exact) > p.K {
		exact = exact[:p.K]
	}
	return Result{Items: exact, SampleSize: stage1Size, Rho: rho0, KStar: kStar, Exact: true}
}

// PECZipf is the Theorem 14 closed form: for inputs known to follow
// Zipf(s) over the given universe, the first sample is unnecessary — the
// sample size 4·k^s·H_{N,s}·ln(k/δ) and k* = (2+√2)^(1/s)·k are computed
// directly. Collective.
func PECZipf(pe *comm.PE, local []uint64, k int, s float64, universe int64, delta float64, rng *xrand.RNG) Result {
	if k < 1 || s <= 0 || delta <= 0 || delta >= 1 {
		panic("freq: invalid PECZipf parameters")
	}
	n := coll.SumAll(pe, int64(len(local)))
	hns := gen.HarmonicGeneralized(universe, s)
	rho := min(1, stats.ZipfPECSampleSize(k, s, hns, delta)/float64(n))
	kStar := int(float64(k)*math.Pow(2+math.Sqrt2, 1/s)) + 1
	p := Params{K: k, Eps: 1, Delta: delta} // Eps unused on this path
	return ecCore(pe, local, p, kStar, rho, rng)
}

// ---------------------------------------------------------------------------
// Centralized baselines (Section 10.2)
// ---------------------------------------------------------------------------

// Naive is the first baseline: every PE sends its aggregated local sample
// directly to a coordinator, which selects the top-k and broadcasts it.
// The coordinator receives p−1 messages — the Θ(p) bottleneck the
// evaluation exposes. Collective.
func Naive(pe *comm.PE, local []uint64, p Params, rng *xrand.RNG) Result {
	p.validate()
	n := coll.SumAll(pe, int64(len(local)))
	rho := min(1, stats.PACSampleSize(n, p.K, p.Eps, p.Delta)/float64(n))
	agg := sampleCounts(local, rho, rng)
	sampleSize := coll.SumAll(pe, agg.Total())

	// Direct delivery to the coordinator: rank 0 receives p-1 messages.
	tag := pe.NextCollTag()
	var top []dht.KV
	if pe.Rank() == 0 {
		for src := 1; src < pe.P(); src++ {
			rx, _ := pe.Recv(src, tag)
			for _, kv := range rx.([]dht.KV) {
				agg.Add(kv.Key, kv.Count)
			}
		}
		top = topKLocal(agg, p.K)
	} else {
		out := agg.AppendKVs(make([]dht.KV, 0, agg.Len()))
		pe.Send(0, tag, out, int64(len(out))*coll.WordsOf[dht.KV]())
	}
	agg.Release()
	top = coll.Broadcast(pe, 0, top)
	items := make([]dht.KV, len(top))
	for i, it := range top {
		items[i] = dht.KV{Key: it.Key, Count: int64(float64(it.Count)/rho + 0.5)}
	}
	return Result{Items: items, SampleSize: sampleSize, Rho: rho, Exact: rho >= 1}
}

// NaiveTree is the second baseline: identical sample, but the aggregated
// counts flow to the coordinator along a binomial tree that merges count
// tables at every step (latency O(log p), but the volume near the root
// still grows with the distinct-key count). Collective.
func NaiveTree(pe *comm.PE, local []uint64, p Params, rng *xrand.RNG) Result {
	p.validate()
	n := coll.SumAll(pe, int64(len(local)))
	rho := min(1, stats.PACSampleSize(n, p.K, p.Eps, p.Delta)/float64(n))
	agg := sampleCounts(local, rho, rng)
	sampleSize := coll.SumAll(pe, agg.Total())

	merged := treeReduceCounts(pe, agg)
	var top []dht.KV
	if pe.Rank() == 0 {
		top = topKLocal(merged, p.K)
	}
	agg.Release()
	top = coll.Broadcast(pe, 0, top)
	items := make([]dht.KV, len(top))
	for i, it := range top {
		items[i] = dht.KV{Key: it.Key, Count: int64(float64(it.Count)/rho + 0.5)}
	}
	return Result{Items: items, SampleSize: sampleSize, Rho: rho, Exact: rho >= 1}
}

// treeReduceCounts merges count tables up a binomial tree rooted at 0,
// accumulating directly into acc (consumed); the root returns the global
// table (acc itself), others nil.
func treeReduceCounts(pe *comm.PE, acc *dht.Table) *dht.Table {
	p := pe.P()
	if p == 1 {
		return acc
	}
	tag := pe.NextCollTag()
	vr := pe.Rank()
	for mask := 1; mask < p; mask <<= 1 {
		if vr&mask != 0 {
			out := acc.AppendKVs(make([]dht.KV, 0, acc.Len()))
			pe.Send(vr&^mask, tag, out, int64(len(out))*coll.WordsOf[dht.KV]())
			return nil
		}
		src := vr | mask
		if src < p {
			rx, _ := pe.Recv(src, tag)
			for _, kv := range rx.([]dht.KV) {
				acc.Add(kv.Key, kv.Count)
			}
		}
	}
	return acc
}

func topKLocal(t *dht.Table, k int) []dht.KV {
	all := t.AppendKVs(make([]dht.KV, 0, t.Len()))
	dht.SortKVDesc(all)
	if len(all) > k {
		all = all[:k]
	}
	return all
}

// ExactTopK computes the exact top-k by fully counting every key through
// the DHT — the ground truth used by tests and experiment scoring (not
// communication-efficient; Θ(distinct keys) volume). Collective.
func ExactTopK(pe *comm.PE, local []uint64, k int, route dht.RouteMode, rng *xrand.RNG) []dht.KV {
	agg := sampleCounts(local, 1, rng)
	shard := countShard(pe, agg, route)
	agg.Release()
	out := dht.SelectTopKTable(pe, shard, k, rng)
	shard.Release()
	return out
}
