package freq

import (
	"commtopk/internal/dht"
	"commtopk/internal/sel"
)

// RegisterWireCodecs registers the payload codecs the heavy-hitter
// algorithms put on a cross-process frame: the dht KV/HC routing
// payloads plus the uint64 selection set the shard top-k selection
// gathers. Call it from the shared registration package (see
// internal/wire/wireprogs) of every binary that runs freq programs on
// comm.BackendWire; idempotent.
func RegisterWireCodecs() {
	dht.RegisterWireCodecs()
	sel.RegisterWireCodecs[uint64]("u64")
	sel.RegisterWireCodecs[int64]("i64")
	sel.RegisterWireCodecs[float64]("f64")
}
