package freq

import (
	"testing"

	"commtopk/internal/comm"
	"commtopk/internal/dht"
	"commtopk/internal/stats"
	"commtopk/internal/xrand"
)

// The exact input of Figure 4: four PEs, 25 letters each.
var figure4Grids = [4]string{
	"LDENAAAGUTIUOEHHTASSARGMR",
	"EESEAFDOTTITHAILDHMOESULT",
	"TAETSOHDENDGRWEAIEOEHOUOE",
	"EIDSIEPRTDNFEEAHWINTWYIID",
}

func figure4Locals() [4][]uint64 {
	var locals [4][]uint64
	for i, grid := range figure4Grids {
		for _, ch := range grid {
			locals[i] = append(locals[i], uint64(ch))
		}
	}
	return locals
}

func TestFigure4ExactCounts(t *testing.T) {
	// The paper states the exact result of the example input:
	// (E,16), (A,10), (T,10), (I,9), (D,8).
	locals := figure4Locals()
	counts := map[uint64]int64{}
	for _, l := range locals {
		for _, x := range l {
			counts[x]++
		}
	}
	want := map[rune]int64{'E': 16, 'A': 10, 'T': 10, 'I': 9, 'D': 8}
	for ch, c := range want {
		if counts[uint64(ch)] != c {
			t.Errorf("count(%c) = %d, want %d", ch, counts[uint64(ch)], c)
		}
	}
	var n int64
	for _, c := range counts {
		n += c
	}
	if n != 100 {
		t.Errorf("total letters %d, want 100", n)
	}
}

func TestFigure4PaperExample(t *testing.T) {
	// Run the PAC pipeline of Figure 4 on its own input (ρ = 0.3, k = 5,
	// 4 PEs) and check the paper's error bound behaviour: the error ε̃·n
	// is the count gap between the best missed and worst returned object.
	// With ρ = 0.3 on 100 letters the result is sample-dependent; the
	// paper's own draw errs by exactly 1 (O returned instead of D). We
	// check the algorithm across seeds: the error must stay small and hit
	// zero for many seeds.
	locals := figure4Locals()
	exact := map[uint64]int64{}
	for _, l := range locals {
		for _, x := range l {
			exact[x]++
		}
	}
	const trials = 40
	zeroErr := 0
	var totalErr float64
	for seed := int64(0); seed < trials; seed++ {
		m := comm.NewMachine(comm.DefaultConfig(4))
		var got []uint64
		m.MustRun(func(pe *comm.PE) {
			rng := xrand.NewPE(seed, pe.Rank())
			agg := sampleCounts(locals[pe.Rank()], 0.3, rng)
			shard := countShard(pe, agg, dht.RouteHypercube)
			agg.Release()
			top := dht.SelectTopKTable(pe, shard, 5, rng)
			shard.Release()
			if pe.Rank() == 0 {
				got = keysOf(top)
			}
		})
		e := stats.EpsTilde(exact, got, 100) * 100 // error in letters
		if e > 16 {
			t.Errorf("seed %d: error %v letters exceeds the maximum possible gap", seed, e)
		}
		totalErr += e
		if e == 0 {
			zeroErr++
		}
	}
	// A 30%-sample of 100 letters is noisy (the paper's own draw errs by
	// 1 letter); but across seeds the pipeline must usually land close.
	if mean := totalErr / trials; mean > 8 {
		t.Errorf("mean error %v letters; sampling pipeline looks broken", mean)
	}
	if zeroErr == 0 {
		t.Error("no trial was exact; sampling pipeline looks broken")
	}
}
