package freq

import (
	"commtopk/internal/coll"
	"commtopk/internal/comm"
	"commtopk/internal/dht"
	"commtopk/internal/stats"
	"commtopk/internal/xrand"
)

func addI64(a, b int64) int64 { return a + b }

// pacStep phases.
const (
	fphInit      = iota // start the global input-size sum
	fphNWait            // harvest n; sample locally, start sample-size sum
	fphSizeWait         // harvest sample size; start DHT routing
	fphShardWait        // harvest owned shard; start top-k selection
	fphTopWait          // harvest top-k; scale, sort, finish
	fphDone
)

// pacStep is the continuation form of PAC — Bernoulli sampling,
// distributed hashing and unsorted selection on sample counts as a
// pooled state machine over the dht steppers. The blocking PAC drives
// this machine through comm.RunSteps: one implementation, both
// execution modes, bit-identical results, RNG consumption and meters.
type pacStep struct {
	local []uint64
	p     Params
	rng   *xrand.RNG
	out   func(Result)
	self  bool

	n     int64
	agg   *dht.Table
	shard *dht.Table
	res   Result

	cur     comm.Stepper
	onN     func(int64)
	onSize  func(int64)
	onShard func(*dht.Table)
	onTop   func([]dht.KV)
	phase   int
}

func newPACStep(pe *comm.PE, local []uint64, p Params, rng *xrand.RNG, out func(Result), self bool) *pacStep {
	p.validate()
	s := comm.GetPooled[pacStep](pe)
	s.local, s.p, s.rng, s.out, s.self = local, p, rng, out, self
	s.res = Result{}
	s.phase = fphInit
	s.cur = nil
	if s.onN == nil {
		s.onN = func(v int64) { s.n = v }
		s.onSize = func(v int64) { s.res.SampleSize = v }
		s.onShard = func(t *dht.Table) { s.shard = t }
		s.onTop = func(top []dht.KV) { s.res.Items = top }
	}
	return s
}

// PACStep is the continuation form of PAC: out (optional) receives the
// (ε, δ)-approximate top-k. Collective; interleaves with unrelated
// steppers under comm.RunAsync.
func PACStep(pe *comm.PE, local []uint64, p Params, rng *xrand.RNG, out func(Result)) comm.Stepper {
	return newPACStep(pe, local, p, rng, out, true)
}

func (s *pacStep) finish(pe *comm.PE) *comm.RecvHandle {
	s.phase = fphDone
	if s.self {
		res, out := s.res, s.out
		s.release(pe)
		if out != nil {
			out(res)
		}
	}
	return nil
}

func (s *pacStep) release(pe *comm.PE) {
	s.local, s.rng, s.out, s.cur = nil, nil, nil, nil
	s.agg, s.shard = nil, nil
	s.res = Result{}
	comm.PutPooled(pe, s)
}

func (s *pacStep) Step(pe *comm.PE) *comm.RecvHandle {
	for {
		if s.cur != nil {
			if h := s.cur.Step(pe); h != nil {
				return h
			}
			s.cur = nil
		}
		switch s.phase {
		case fphInit:
			s.cur = coll.AllReduceScalarStep(pe, int64(len(s.local)), addI64, s.onN)
			s.phase = fphNWait
		case fphNWait:
			s.res.Rho = min(1, stats.PACSampleSize(s.n, s.p.K, s.p.Eps, s.p.Delta)/float64(s.n))
			s.agg = sampleCounts(s.local, s.res.Rho, s.rng)
			s.cur = coll.AllReduceScalarStep(pe, s.agg.Total(), addI64, s.onSize)
			s.phase = fphSizeWait
		case fphSizeWait:
			items := comm.ScratchSlice[dht.KV](pe, "freq.count.items", s.agg.Len())[:0]
			s.cur = dht.CountKVStep(pe, s.agg.AppendKVs(items), s.p.Route, s.onShard)
			s.phase = fphShardWait
		case fphShardWait:
			s.agg.Release()
			s.agg = nil
			s.cur = dht.SelectTopKTableStep(pe, s.shard, s.p.K, s.rng, s.onTop)
			s.phase = fphTopWait
		case fphTopWait:
			s.shard.Release()
			s.shard = nil
			for i := range s.res.Items {
				s.res.Items[i].Count = int64(float64(s.res.Items[i].Count)/s.res.Rho + 0.5)
			}
			dht.SortKVDesc(s.res.Items)
			s.res.Exact = s.res.Rho >= 1
			return s.finish(pe)
		default:
			return nil
		}
	}
}

// ecStep phases.
const (
	ephInit      = iota // start the global input-size sum (skipped when rho given)
	ephNWait            // harvest n; choose k*, rho
	ephSample           // sample locally, start sample-size sum
	ephSizeWait         // harvest sample size; start DHT routing
	ephShardWait        // harvest owned shard; start candidate selection
	ephCandWait         // harvest candidates; local exact count, start reduction
	ephExactWait        // harvest global counts; sort, truncate, finish
	ephDone
)

// ecStep is the continuation form of EC / ecCore: sample at ρ, select
// the k* most sampled, count them exactly with a vector reduction.
type ecStep struct {
	local []uint64
	p     Params
	rng   *xrand.RNG
	out   func(Result)
	self  bool

	// haveParams: kStar/rho were fixed by the caller (the ecCore entry
	// used by PECZipf); otherwise they are derived from the global n.
	haveParams bool

	n      int64
	agg    *dht.Table
	shard  *dht.Table
	cands  []dht.KV
	keys   []uint64
	counts []int64
	res    Result

	cur      comm.Stepper
	onN      func(int64)
	onSize   func(int64)
	onShard  func(*dht.Table)
	onCands  func([]dht.KV)
	onGlobal func([]int64)
	phase    int
}

func newECStep(pe *comm.PE, local []uint64, p Params, kStar int, rho float64, haveParams bool, rng *xrand.RNG, out func(Result), self bool) *ecStep {
	p.validate()
	s := comm.GetPooled[ecStep](pe)
	s.local, s.p, s.rng, s.out, s.self = local, p, rng, out, self
	s.haveParams = haveParams
	s.res = Result{KStar: kStar, Rho: rho}
	s.phase = ephInit
	if haveParams {
		s.phase = ephSample
	}
	s.cur = nil
	if s.onN == nil {
		s.onN = func(v int64) { s.n = v }
		s.onSize = func(v int64) { s.res.SampleSize = v }
		s.onShard = func(t *dht.Table) { s.shard = t }
		s.onCands = func(c []dht.KV) { s.cands = c }
		s.onGlobal = func(g []int64) { s.counts = append(s.counts[:0], g...) }
	}
	return s
}

// ECStep is the continuation form of EC: out (optional) receives the
// exactly counted top-k. Collective; interleaves with unrelated
// steppers under comm.RunAsync.
func ECStep(pe *comm.PE, local []uint64, p Params, rng *xrand.RNG, out func(Result)) comm.Stepper {
	return newECStep(pe, local, p, 0, 0, false, rng, out, true)
}

func (s *ecStep) finish(pe *comm.PE) *comm.RecvHandle {
	s.phase = ephDone
	if s.self {
		res, out := s.res, s.out
		s.release(pe)
		if out != nil {
			out(res)
		}
	}
	return nil
}

func (s *ecStep) release(pe *comm.PE) {
	s.local, s.rng, s.out, s.cur = nil, nil, nil, nil
	s.agg, s.shard, s.cands, s.keys = nil, nil, nil, nil
	s.counts = s.counts[:0]
	s.res = Result{}
	comm.PutPooled(pe, s)
}

func (s *ecStep) Step(pe *comm.PE) *comm.RecvHandle {
	for {
		if s.cur != nil {
			if h := s.cur.Step(pe); h != nil {
				return h
			}
			s.cur = nil
		}
		switch s.phase {
		case ephInit:
			s.cur = coll.AllReduceScalarStep(pe, int64(len(s.local)), addI64, s.onN)
			s.phase = ephNWait
		case ephNWait:
			kStar := s.p.KStarOverride
			if kStar <= 0 {
				kStar = stats.OptimalKStar(s.n, s.p.K, pe.P(), s.p.Eps, s.p.Delta)
			}
			s.res.KStar = kStar
			s.res.Rho = min(1, stats.ECSampleSize(s.n, kStar, s.p.Eps, s.p.Delta)/float64(s.n))
			s.phase = ephSample
		case ephSample:
			s.agg = sampleCounts(s.local, s.res.Rho, s.rng)
			s.cur = coll.AllReduceScalarStep(pe, s.agg.Total(), addI64, s.onSize)
			s.phase = ephSizeWait
		case ephSizeWait:
			items := comm.ScratchSlice[dht.KV](pe, "freq.count.items", s.agg.Len())[:0]
			s.cur = dht.CountKVStep(pe, s.agg.AppendKVs(items), s.p.Route, s.onShard)
			s.phase = ephShardWait
		case ephShardWait:
			s.agg.Release()
			s.agg = nil
			s.cur = dht.SelectTopKTableStep(pe, s.shard, s.res.KStar, s.rng, s.onCands)
			s.phase = ephCandWait
		case ephCandWait:
			s.shard.Release()
			s.shard = nil
			s.keys = candidateKeys(s.cands)
			s.res.Exact = true
			if len(s.keys) == 0 {
				s.res.Items = nil
				return s.finish(pe)
			}
			// Local exact counting pass over the candidate index.
			index := dht.NewTable(len(s.keys))
			for i, k := range s.keys {
				index.Set(k, int64(i))
			}
			counts := make([]int64, len(s.keys))
			for _, x := range s.local {
				if i, ok := index.Get(x); ok {
					counts[i]++
				}
			}
			index.Release()
			s.cur = coll.AllReduceStep(pe, counts, addI64, s.onGlobal)
			s.phase = ephExactWait
		case ephExactWait:
			exact := make([]dht.KV, len(s.keys))
			for i, k := range s.keys {
				exact[i] = dht.KV{Key: k, Count: s.counts[i]}
			}
			dht.SortKVDesc(exact)
			if len(exact) > s.p.K {
				exact = exact[:s.p.K]
			}
			s.res.Items = exact
			return s.finish(pe)
		default:
			return nil
		}
	}
}
