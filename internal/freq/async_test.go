package freq

import (
	"reflect"
	"testing"

	"commtopk/internal/comm"
	"commtopk/internal/xrand"
)

// TestFreqSteppersMatchBlocking pins the tentpole contract for freq:
// PACStep/ECStep under RunAsync produce bit-identical results and
// meters to the blocking PAC/EC (which drive the same machines through
// RunSteps).
func TestFreqSteppersMatchBlocking(t *testing.T) {
	const p = 5
	locals, _ := zipfWorkload(29, p, 3000, 1<<11)
	params := Params{K: 8, Eps: 0.02, Delta: 0.01}

	type obs struct {
		pac, ec []Result
		stats   comm.Stats
	}
	ref := obs{pac: make([]Result, p), ec: make([]Result, p)}
	mach := comm.NewMachine(comm.DefaultConfig(p))
	mach.MustRun(func(pe *comm.PE) {
		r := pe.Rank()
		ref.pac[r] = PAC(pe, locals[r], params, xrand.NewPE(31, r))
		ref.ec[r] = EC(pe, locals[r], params, xrand.NewPE(33, r))
	})
	ref.stats = mach.Stats()

	got := obs{pac: make([]Result, p), ec: make([]Result, p)}
	mach2 := comm.NewMachine(comm.DefaultConfig(p))
	mach2.MustRunAsync(func(pe *comm.PE) comm.Stepper {
		r := pe.Rank()
		return comm.SeqP(pe,
			PACStep(pe, locals[r], params, xrand.NewPE(31, r), func(v Result) { got.pac[r] = v }),
			ECStep(pe, locals[r], params, xrand.NewPE(33, r), func(v Result) { got.ec[r] = v }),
		)
	})
	got.stats = mach2.Stats()

	if !reflect.DeepEqual(got.pac, ref.pac) {
		t.Errorf("PACStep diverged from blocking PAC")
	}
	if !reflect.DeepEqual(got.ec, ref.ec) {
		t.Errorf("ECStep diverged from blocking EC")
	}
	if got.stats != ref.stats {
		t.Errorf("stepper meters diverged: %+v vs %+v", got.stats, ref.stats)
	}
}

// TestFreqRepeatedRunsBitIdentical: no map iteration or interleaving
// artifact anywhere on the PAC/EC paths — repeated runs over identical
// inputs must be bit-identical in results AND meters.
func TestFreqRepeatedRunsBitIdentical(t *testing.T) {
	const p = 5
	params := Params{K: 8, Eps: 0.02, Delta: 0.01}
	run := func() ([]Result, []Result, comm.Stats) {
		locals, _ := zipfWorkload(37, p, 2500, 1<<11)
		pac := make([]Result, p)
		ec := make([]Result, p)
		mach := comm.NewMachine(comm.DefaultConfig(p))
		mach.MustRun(func(pe *comm.PE) {
			r := pe.Rank()
			pac[r] = PAC(pe, locals[r], params, xrand.NewPE(41, r))
			ec[r] = EC(pe, locals[r], params, xrand.NewPE(43, r))
		})
		return pac, ec, mach.Stats()
	}
	refPAC, refEC, refStats := run()
	for rep := 0; rep < 3; rep++ {
		pac, ec, stats := run()
		if !reflect.DeepEqual(pac, refPAC) || !reflect.DeepEqual(ec, refEC) {
			t.Fatalf("rep %d: results diverged", rep)
		}
		if stats != refStats {
			t.Fatalf("rep %d: meters diverged", rep)
		}
	}
}
