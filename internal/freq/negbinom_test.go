package freq

import (
	"testing"

	"commtopk/internal/comm"
	"commtopk/internal/gen"
	"commtopk/internal/stats"
	"commtopk/internal/xrand"
)

// The paper's second Section 10.2 workload: a negative binomial
// distribution (r=1000, p=0.05) with "a rather wide plateau, resulting in
// the most frequent objects and their surrounding elements all being of
// very similar frequency". The paper found it "an easy case for
// selection" because the aggregated samples have few distinct elements;
// the algorithms must remain correct within ε even though the top-k set
// itself is ambiguous.
func negBinomWorkload(seed int64, p, perPE int) ([][]uint64, map[uint64]int64) {
	locals := make([][]uint64, p)
	exact := map[uint64]int64{}
	for r := 0; r < p; r++ {
		locals[r] = gen.NegBinomialInput(xrand.NewPE(seed, r), perPE, 1000, 0.05)
		for _, x := range locals[r] {
			exact[x]++
		}
	}
	return locals, exact
}

func TestAlgorithmsOnNegativeBinomialPlateau(t *testing.T) {
	const p = 4
	const perPE = 8000
	locals, exact := negBinomWorkload(43, p, perPE)
	n := int64(p * perPE)
	params := Params{K: 8, Eps: 0.005, Delta: 0.01}
	for _, a := range allAlgos {
		m := comm.NewMachine(comm.DefaultConfig(p))
		var res Result
		m.MustRun(func(pe *comm.PE) {
			r := a.run(pe, locals[pe.Rank()], params, xrand.NewPE(47, pe.Rank()))
			if pe.Rank() == 0 {
				res = r
			}
		})
		if len(res.Items) != params.K {
			t.Errorf("%s: %d items", a.name, len(res.Items))
			continue
		}
		// On a plateau the exact top-k is ambiguous, but the ε̃ error (the
		// count gap across the boundary) must stay within ε — and is in
		// fact tiny because near-ties make swaps cheap.
		if e := stats.EpsTilde(exact, keysOf(res.Items), n); e > params.Eps {
			t.Errorf("%s: ε̃=%v on plateau input", a.name, e)
		}
	}
}

func TestPECHonestOnPlateau(t *testing.T) {
	// The negative-binomial bell is not literally flat — Lemma 12's
	// criterion may legitimately find a k* on its slope. What must hold:
	// whenever PEC claims exactness, the answer really is exact (ε̃ = 0).
	const p = 4
	locals, exact := negBinomWorkload(53, p, 20000)
	n := int64(p * 20000)
	m := comm.NewMachine(comm.DefaultConfig(p))
	var res Result
	m.MustRun(func(pe *comm.PE) {
		r := PEC(pe, locals[pe.Rank()], Params{K: 8, Eps: 0.02, Delta: 0.01}, 0.05, xrand.NewPE(59, pe.Rank()))
		if pe.Rank() == 0 {
			res = r
		}
	})
	if res.Exact {
		if e := stats.EpsTilde(exact, keysOf(res.Items), n); e != 0 {
			t.Errorf("PEC claimed exactness but ε̃=%v", e)
		}
		for _, it := range res.Items {
			if exact[it.Key] != it.Count {
				t.Errorf("key %d count %d, true %d", it.Key, it.Count, exact[it.Key])
			}
		}
	}
}

func TestPlateauAggregatedSamplesAreSmall(t *testing.T) {
	// The paper's observation: "the aggregated samples have much fewer
	// elements than in a Zipfian distribution — an easy case for
	// selection". Compare distinct sampled keys.
	const p = 4
	const perPE = 8000
	nbLocals, _ := negBinomWorkload(61, p, perPE)
	z := gen.NewZipf(1<<16, 1)
	zipfLocals := make([][]uint64, p)
	for r := 0; r < p; r++ {
		zipfLocals[r] = gen.FrequencyInput(xrand.NewPE(61, r), z, perPE)
	}
	distinct := func(locals [][]uint64) int {
		seen := map[uint64]bool{}
		for _, l := range locals {
			for _, x := range l {
				seen[x] = true
			}
		}
		return len(seen)
	}
	nb, zipf := distinct(nbLocals), distinct(zipfLocals)
	if nb*4 > zipf {
		t.Errorf("negative binomial distinct keys %d not far below Zipf's %d", nb, zipf)
	}
}
