package agg

import (
	"math"
	"sort"

	"commtopk/internal/coll"
	"commtopk/internal/comm"
	"commtopk/internal/dht"
	"commtopk/internal/stats"
	"commtopk/internal/xrand"
)

func addI64(a, b int64) int64     { return a + b }
func addF64(a, b float64) float64 { return a + b }

// aggStep phases (shared by the PAC and ECSum machines — the two
// algorithms diverge only after the candidate selection).
const (
	aphInit      = iota // start the global pair-count sum
	aphNWait            // harvest n; start the total-mass sum
	aphMWait            // harvest m; sample locally, start sample-size sum
	aphSizeWait         // harvest sample size; start DHT routing
	aphShardWait        // harvest owned shard; start top/candidate selection
	aphTopWait          // PAC: harvest top-k, scale, finish
	aphCandWait         // ECSum: harvest candidates; local lookups, reduction
	aphItemsWait        // ECSum: harvest global sums; sort, truncate, finish
	aphDone
)

// aggStep is the continuation form of PAC and ECSum — Section 8's
// value-proportional sampling, DHT routing and selection as one pooled
// state machine (exact is false for PAC, true for ECSum). The blocking
// forms drive this machine through comm.RunSteps: one implementation,
// both execution modes, bit-identical results, RNG draws and meters.
type aggStep struct {
	keys   []uint64
	values []float64
	p      Params
	rng    *xrand.RNG
	out    func(Result)
	self   bool
	exact  bool // ECSum path (exact summation of k* candidates)

	local  *dht.SumTable
	n      int64
	mTotal float64
	aggKVs []dht.KV
	shard  *dht.Table
	cands  []dht.KV
	ids    []uint64
	sums   []float64
	res    Result

	cur      comm.Stepper
	onN      func(int64)
	onM      func(float64)
	onSize   func(int64)
	onShard  func(*dht.Table)
	onSel    func([]dht.KV)
	onGlobal func([]float64)
	phase    int
}

func newAggStep(pe *comm.PE, keys []uint64, values []float64, p Params, exact bool, rng *xrand.RNG, out func(Result), self bool) *aggStep {
	p.validate()
	s := comm.GetPooled[aggStep](pe)
	s.keys, s.values, s.p, s.rng, s.out, s.self = keys, values, p, rng, out, self
	s.exact = exact
	s.local = LocalAggregate(keys, values)
	s.res = Result{}
	s.phase = aphInit
	s.cur = nil
	if s.onN == nil {
		s.onN = func(v int64) { s.n = v }
		s.onM = func(v float64) { s.mTotal = v }
		s.onSize = func(v int64) { s.res.SampleSize = v }
		s.onShard = func(t *dht.Table) { s.shard = t }
		s.onSel = func(c []dht.KV) { s.cands = c }
		s.onGlobal = func(g []float64) { s.sums = append(s.sums[:0], g...) }
	}
	return s
}

// PACStep is the continuation form of PAC: out (optional) receives the
// (ε, δ)-approximate top-k sums. Collective; interleaves with unrelated
// steppers under comm.RunAsync.
func PACStep(pe *comm.PE, keys []uint64, values []float64, p Params, rng *xrand.RNG, out func(Result)) comm.Stepper {
	return newAggStep(pe, keys, values, p, false, rng, out, true)
}

// ECSumStep is the continuation form of ECSum: out (optional) receives
// the exactly summed top-k. Collective.
func ECSumStep(pe *comm.PE, keys []uint64, values []float64, p Params, rng *xrand.RNG, out func(Result)) comm.Stepper {
	return newAggStep(pe, keys, values, p, true, rng, out, true)
}

func (s *aggStep) finish(pe *comm.PE) *comm.RecvHandle {
	s.phase = aphDone
	if s.self {
		res, out := s.res, s.out
		s.release(pe)
		if out != nil {
			out(res)
		}
	}
	return nil
}

func (s *aggStep) release(pe *comm.PE) {
	if s.local != nil {
		s.local.Release()
	}
	s.keys, s.values, s.rng, s.out, s.cur = nil, nil, nil, nil, nil
	s.local, s.shard = nil, nil
	s.aggKVs, s.cands, s.ids = nil, nil, nil
	s.sums = s.sums[:0]
	s.res = Result{}
	comm.PutPooled(pe, s)
}

func (s *aggStep) Step(pe *comm.PE) *comm.RecvHandle {
	for {
		if s.cur != nil {
			if h := s.cur.Step(pe); h != nil {
				return h
			}
			s.cur = nil
		}
		switch s.phase {
		case aphInit:
			s.cur = coll.AllReduceScalarStep(pe, int64(len(s.keys)), addI64, s.onN)
			s.phase = aphNWait
		case aphNWait:
			s.cur = coll.AllReduceScalarStep(pe, s.local.Total(), addF64, s.onM)
			s.phase = aphMWait
		case aphMWait:
			if s.mTotal <= 0 {
				s.res = Result{}
				return s.finish(pe)
			}
			sz := stats.SumAggSampleSize(s.n, pe.P(), s.p.Eps, s.p.Delta)
			if s.exact {
				kStar := s.p.KStarOverride
				if kStar <= 0 {
					kStar = stats.OptimalKStar(s.n, s.p.K, pe.P(), s.p.Eps, s.p.Delta)
				}
				s.res.KStar = kStar
				sz /= math.Sqrt(float64(kStar))
				if sz < float64(4*s.p.K) {
					sz = float64(4 * s.p.K)
				}
			}
			s.res.VAvg = s.mTotal / sz
			var localSize int64
			s.aggKVs, localSize = sampleAggregated(s.local, s.res.VAvg, s.rng)
			s.cur = coll.AllReduceScalarStep(pe, localSize, addI64, s.onSize)
			s.phase = aphSizeWait
		case aphSizeWait:
			s.cur = dht.CountKVStep(pe, s.aggKVs, s.p.Route, s.onShard)
			s.phase = aphShardWait
		case aphShardWait:
			sel := s.p.K
			if s.exact {
				sel = s.res.KStar
			}
			s.cur = dht.SelectTopKTableStep(pe, s.shard, sel, s.rng, s.onSel)
			if s.exact {
				s.phase = aphCandWait
			} else {
				s.phase = aphTopWait
			}
		case aphTopWait:
			s.shard.Release()
			s.shard = nil
			items := make([]ItemSum, len(s.cands))
			for i, kv := range s.cands {
				items[i] = ItemSum{Key: kv.Key, Sum: float64(kv.Count) * s.res.VAvg}
			}
			s.res.Items = items
			return s.finish(pe)
		case aphCandWait:
			s.shard.Release()
			s.shard = nil
			s.res.Exact = true
			ids := make([]uint64, len(s.cands))
			for i, kv := range s.cands {
				ids[i] = kv.Key
			}
			sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
			s.ids = ids
			if len(ids) == 0 {
				s.res.Items = nil
				return s.finish(pe)
			}
			sums := make([]float64, len(ids))
			for i, id := range ids {
				sums[i], _ = s.local.Get(id)
			}
			s.cur = coll.AllReduceStep(pe, sums, addF64, s.onGlobal)
			s.phase = aphItemsWait
		case aphItemsWait:
			items := make([]ItemSum, len(s.ids))
			for i, id := range s.ids {
				items[i] = ItemSum{Key: id, Sum: s.sums[i]}
			}
			sort.Slice(items, func(i, j int) bool {
				if items[i].Sum != items[j].Sum {
					return items[i].Sum > items[j].Sum
				}
				return items[i].Key < items[j].Key
			})
			if len(items) > s.p.K {
				items = items[:s.p.K]
			}
			s.res.Items = items
			return s.finish(pe)
		default:
			return nil
		}
	}
}
