package agg

import (
	"reflect"
	"testing"

	"commtopk/internal/comm"
	"commtopk/internal/xrand"
)

// TestAggSteppersMatchBlocking pins the tentpole contract for agg:
// PACStep/ECSumStep under RunAsync produce bit-identical results and
// meters to the blocking PAC/ECSum (which drive the same machines
// through RunSteps).
func TestAggSteppersMatchBlocking(t *testing.T) {
	const p = 5
	keys, vals, _ := workload(19, p, 2000, 1<<10)
	params := Params{K: 8, Eps: 0.02, Delta: 0.01}

	type obs struct {
		pac, ec []Result
		stats   comm.Stats
	}
	ref := obs{pac: make([]Result, p), ec: make([]Result, p)}
	mach := comm.NewMachine(comm.DefaultConfig(p))
	mach.MustRun(func(pe *comm.PE) {
		r := pe.Rank()
		ref.pac[r] = PAC(pe, keys[r], vals[r], params, xrand.NewPE(51, r))
		ref.ec[r] = ECSum(pe, keys[r], vals[r], params, xrand.NewPE(53, r))
	})
	ref.stats = mach.Stats()

	got := obs{pac: make([]Result, p), ec: make([]Result, p)}
	mach2 := comm.NewMachine(comm.DefaultConfig(p))
	mach2.MustRunAsync(func(pe *comm.PE) comm.Stepper {
		r := pe.Rank()
		return comm.SeqP(pe,
			PACStep(pe, keys[r], vals[r], params, xrand.NewPE(51, r), func(v Result) { got.pac[r] = v }),
			ECSumStep(pe, keys[r], vals[r], params, xrand.NewPE(53, r), func(v Result) { got.ec[r] = v }),
		)
	})
	got.stats = mach2.Stats()

	if !reflect.DeepEqual(got.pac, ref.pac) {
		t.Errorf("PACStep diverged from blocking PAC")
	}
	if !reflect.DeepEqual(got.ec, ref.ec) {
		t.Errorf("ECSumStep diverged from blocking ECSum")
	}
	if got.stats != ref.stats {
		t.Errorf("stepper meters diverged: %+v vs %+v", got.stats, ref.stats)
	}
}
