package agg

import (
	"math"
	"sort"
	"testing"

	"commtopk/internal/comm"
	"commtopk/internal/dht"
	"commtopk/internal/gen"
	"commtopk/internal/xrand"
)

// workload builds per-PE weighted inputs and the exact global sums.
func workload(seed int64, p, perPE, universe int) (keysByPE [][]uint64, valsByPE [][]float64, exact map[uint64]float64) {
	z := gen.NewZipf(universe, 1)
	keysByPE = make([][]uint64, p)
	valsByPE = make([][]float64, p)
	exact = map[uint64]float64{}
	for r := 0; r < p; r++ {
		k, v := gen.WeightedInput(xrand.NewPE(seed, r), z, perPE)
		keysByPE[r], valsByPE[r] = k, v
		for i := range k {
			exact[k[i]] += v[i]
		}
	}
	return
}

func exactTopSums(exact map[uint64]float64, k int) []ItemSum {
	all := make([]ItemSum, 0, len(exact))
	for key, s := range exact {
		all = append(all, ItemSum{key, s})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Sum != all[j].Sum {
			return all[i].Sum > all[j].Sum
		}
		return all[i].Key < all[j].Key
	})
	if len(all) > k {
		all = all[:k]
	}
	return all
}

// sumEpsTilde is the ε̃ error adapted to sums: best missed sum minus worst
// returned sum, relative to the total mass.
func sumEpsTilde(exact map[uint64]float64, out []ItemSum, m float64) float64 {
	outSet := map[uint64]bool{}
	minOut := math.Inf(1)
	for _, it := range out {
		outSet[it.Key] = true
		if s := exact[it.Key]; s < minOut {
			minOut = s
		}
	}
	maxMissed := 0.0
	for k, s := range exact {
		if !outSet[k] && s > maxMissed {
			maxMissed = s
		}
	}
	if maxMissed <= minOut {
		return 0
	}
	return (maxMissed - minOut) / m
}

func totalMass(exact map[uint64]float64) float64 {
	var m float64
	for _, v := range exact {
		m += v
	}
	return m
}

func TestPACApproximatesTopSums(t *testing.T) {
	for _, p := range []int{1, 4, 6} {
		keys, vals, exact := workload(3, p, 4000, 1<<10)
		m := totalMass(exact)
		params := Params{K: 8, Eps: 0.01, Delta: 0.01}
		mach := comm.NewMachine(comm.DefaultConfig(p))
		var res Result
		mach.MustRun(func(pe *comm.PE) {
			r := PAC(pe, keys[pe.Rank()], vals[pe.Rank()], params, xrand.NewPE(7, pe.Rank()))
			if pe.Rank() == 0 {
				res = r
			}
		})
		if len(res.Items) != params.K {
			t.Fatalf("p=%d: %d items", p, len(res.Items))
		}
		if e := sumEpsTilde(exact, res.Items, m); e > params.Eps {
			t.Errorf("p=%d: sum ε̃=%v exceeds %v", p, e, params.Eps)
		}
		// Estimated sums must be within ε·m of truth for returned keys.
		for _, it := range res.Items {
			if math.Abs(it.Sum-exact[it.Key]) > params.Eps*m*2 {
				t.Errorf("p=%d: key %d sum estimate %v vs exact %v", p, it.Key, it.Sum, exact[it.Key])
			}
		}
	}
}

func TestECSumIsExact(t *testing.T) {
	const p = 4
	keys, vals, exact := workload(11, p, 3000, 1<<9)
	m := totalMass(exact)
	mach := comm.NewMachine(comm.DefaultConfig(p))
	var res Result
	mach.MustRun(func(pe *comm.PE) {
		r := ECSum(pe, keys[pe.Rank()], vals[pe.Rank()], Params{K: 6, Eps: 0.01, Delta: 0.01}, xrand.NewPE(13, pe.Rank()))
		if pe.Rank() == 0 {
			res = r
		}
	})
	if !res.Exact {
		t.Fatal("ECSum not exact")
	}
	for _, it := range res.Items {
		if math.Abs(it.Sum-exact[it.Key]) > 1e-6 {
			t.Errorf("key %d: sum %v, exact %v", it.Key, it.Sum, exact[it.Key])
		}
	}
	if e := sumEpsTilde(exact, res.Items, m); e > 0.01 {
		t.Errorf("ECSum ε̃=%v", e)
	}
}

func TestECSumSamplesLessThanPAC(t *testing.T) {
	const p = 4
	keys, vals, _ := workload(17, p, 4000, 1<<10)
	params := Params{K: 8, Eps: 0.005, Delta: 0.01}
	mach := comm.NewMachine(comm.DefaultConfig(p))
	var pacS, ecS int64
	mach.MustRun(func(pe *comm.PE) {
		r1 := PAC(pe, keys[pe.Rank()], vals[pe.Rank()], params, xrand.NewPE(19, pe.Rank()))
		r2 := ECSum(pe, keys[pe.Rank()], vals[pe.Rank()], params, xrand.NewPE(23, pe.Rank()))
		if pe.Rank() == 0 {
			pacS, ecS = r1.SampleSize, r2.SampleSize
		}
	})
	if ecS >= pacS {
		t.Errorf("ECSum sample %d not below PAC's %d", ecS, pacS)
	}
}

func TestExactTopSums(t *testing.T) {
	const p = 3
	keys, vals, exact := workload(29, p, 1500, 1<<8)
	want := exactTopSums(exact, 5)
	mach := comm.NewMachine(comm.DefaultConfig(p))
	mach.MustRun(func(pe *comm.PE) {
		got := ExactTopSums(pe, keys[pe.Rank()], vals[pe.Rank()], 5, dht.RouteHypercube, xrand.NewPE(31, pe.Rank()))
		if len(got) != 5 {
			t.Fatalf("got %d items", len(got))
		}
		for i := range got {
			if got[i].Key != want[i].Key {
				t.Errorf("rank %d: key %d, want %d", i, got[i].Key, want[i].Key)
			}
			if math.Abs(got[i].Sum-want[i].Sum) > 1e-4*want[i].Sum {
				t.Errorf("rank %d: sum %v, want %v", i, got[i].Sum, want[i].Sum)
			}
		}
	})
}

func TestLocalAggregate(t *testing.T) {
	m := LocalAggregate([]uint64{1, 2, 1}, []float64{1.5, 2, 0.5})
	defer m.Release()
	if v1, _ := m.Get(1); v1 != 2 {
		t.Errorf("aggregate[1] = %v", v1)
	}
	if v2, _ := m.Get(2); v2 != 2 {
		t.Errorf("aggregate[2] = %v", v2)
	}
	if m.Len() != 2 || m.Total() != 4 {
		t.Errorf("Len=%d Total=%v", m.Len(), m.Total())
	}
	defer func() {
		if recover() == nil {
			t.Error("negative value should panic")
		}
	}()
	LocalAggregate([]uint64{1}, []float64{-1})
}

func TestSampleAggregatedDeviationAtMostOne(t *testing.T) {
	// Per key, the sample count must deviate from v/vavg by < 1.
	rng := xrand.New(37)
	local := dht.NewSumTable(3)
	defer local.Release()
	local.Add(1, 10.3)
	local.Add(2, 0.7)
	local.Add(3, 99.99)
	const vavg = 1.0
	for trial := 0; trial < 100; trial++ {
		kvs, total := sampleAggregated(local, vavg, rng)
		s := map[uint64]int64{}
		var sum int64
		for _, kv := range kvs {
			s[kv.Key] = kv.Count
			sum += kv.Count
		}
		if sum != total {
			t.Fatalf("reported sample size %d, summed %d", total, sum)
		}
		local.ForEach(func(k uint64, v float64) {
			q := v / vavg
			c := float64(s[k])
			if c < math.Floor(q) || c > math.Ceil(q) {
				t.Fatalf("key %d: count %v outside [floor,ceil] of %v", k, c, q)
			}
		})
	}
}

func TestPACEmptyInput(t *testing.T) {
	mach := comm.NewMachine(comm.DefaultConfig(2))
	mach.MustRun(func(pe *comm.PE) {
		res := PAC(pe, nil, nil, Params{K: 3, Eps: 0.1, Delta: 0.1}, xrand.NewPE(41, pe.Rank()))
		if len(res.Items) != 0 {
			t.Errorf("empty input yielded %v", res.Items)
		}
	})
}
