// Package agg implements top-k sum aggregation (Section 8 of the paper):
// the input is a multiset of (key, value) pairs with non-negative values,
// and the query asks for the k keys with the largest value sums.
//
// The algorithms carry over from the frequent-objects case with a
// different sampling procedure (Section 8.1): the local input is first
// aggregated per key, and each aggregated value v yields ⌊v/v_avg⌋
// deterministic samples plus one more with probability frac(v/v_avg),
// where v_avg = m/s for total value m and target sample size s. Per key
// and PE the sample count then deviates from its expectation by at most 1,
// which is what the Hoeffding analysis of Theorem 15 needs.
package agg

import (
	"fmt"
	"math"
	"sort"

	"commtopk/internal/coll"
	"commtopk/internal/comm"
	"commtopk/internal/dht"
	"commtopk/internal/stats"
	"commtopk/internal/xrand"
)

// Params configures a top-k sum aggregation query.
type Params struct {
	// K is the number of keys to return.
	K int
	// Eps is the relative error bound (relative to the total sum m).
	Eps float64
	// Delta is the failure probability.
	Delta float64
	// Route selects the DHT insertion routing.
	Route dht.RouteMode
	// KStarOverride fixes the exactly-summed candidate count for ECSum.
	KStarOverride int
}

func (p Params) validate() {
	if p.K < 1 || p.Eps <= 0 || p.Delta <= 0 || p.Delta >= 1 {
		panic(fmt.Sprintf("agg: invalid params %+v", p))
	}
}

// ItemSum is one key with its (estimated or exact) global value sum.
type ItemSum struct {
	Key uint64
	Sum float64
}

// Result is the outcome of a sum-aggregation query; identical on all PEs.
type Result struct {
	// Items are the top-k keys by sum, largest first.
	Items []ItemSum
	// SampleSize is the realized global sample size (in sample units).
	SampleSize int64
	// VAvg is the value mass per sample unit.
	VAvg float64
	// Exact reports whether sums are exact.
	Exact bool
	// KStar is the exactly summed candidate count (ECSum only).
	KStar int
}

// LocalAggregate sums values per key — the first step of Section 8.1 and
// a useful public helper. The result is a pooled dht.SumTable (the last
// query-path structure that was a Go map until PR 4): the caller owns it
// and should Release it when done so steady-state queries stay
// allocation-lean.
func LocalAggregate(keys []uint64, values []float64) *dht.SumTable {
	if len(keys) != len(values) {
		panic("agg: keys/values length mismatch")
	}
	t := dht.NewSumTable(len(keys))
	for i, k := range keys {
		v := values[i]
		if v < 0 {
			panic("agg: negative value")
		}
		t.Add(k, v)
	}
	return t
}

// sampleAggregated converts aggregated values into integer sample counts
// (as KV pairs in ascending key order): floor + Bernoulli residual
// (Section 8.1). Keys are visited in sorted order (dht.SortedKeys) so
// each key's Bernoulli draw is a fixed function of the RNG stream:
// iterating in table (or, before PR 4, Go-map) order would let the
// layout decide which key consumed which deviate, making the sampled
// counts — and hence ECSum's candidate set and realized ε̃ — vary
// between runs with identical seeds (the agg.TestECSumIsExact flake).
// The second result is the realized local sample size.
func sampleAggregated(local *dht.SumTable, vavg float64, rng *xrand.RNG) ([]dht.KV, int64) {
	keys := local.SortedKeys(make([]uint64, 0, local.Len()))
	out := make([]dht.KV, 0, local.Len())
	var total int64
	for _, k := range keys {
		v, _ := local.Get(k)
		q := v / vavg
		c := int64(q)
		if rng.Bernoulli(q - float64(c)) {
			c++
		}
		if c > 0 {
			out = append(out, dht.KV{Key: k, Count: c})
			total += c
		}
	}
	return out, total
}

// PAC computes an (ε, δ)-approximation of the top-k highest-summing keys
// (Theorem 15). Collective.
func PAC(pe *comm.PE, keys []uint64, values []float64, p Params, rng *xrand.RNG) Result {
	p.validate()
	local := LocalAggregate(keys, values)
	defer local.Release()
	n := coll.SumAll(pe, int64(len(keys)))
	mTotal := sumAllFloat(pe, local.Total())
	if mTotal <= 0 {
		return Result{}
	}
	s := stats.SumAggSampleSize(n, pe.P(), p.Eps, p.Delta)
	vavg := mTotal / s

	agg, localSize := sampleAggregated(local, vavg, rng)
	sampleSize := coll.SumAll(pe, localSize)
	shard := dht.CountKV(pe, agg, p.Route)
	top := dht.SelectTopKTable(pe, shard, p.K, rng)
	shard.Release()
	items := make([]ItemSum, len(top))
	for i, kv := range top {
		items[i] = ItemSum{Key: kv.Key, Sum: float64(kv.Count) * vavg}
	}
	return Result{Items: items, SampleSize: sampleSize, VAvg: vavg}
}

// ECSum is the exact-summation variant (end of Section 8.2): like PAC,
// but the k* highest-sampled candidates are summed exactly — and unlike
// the frequent-objects case, no second input scan is needed: "a lookup in
// the local aggregation result now suffices". Collective.
func ECSum(pe *comm.PE, keys []uint64, values []float64, p Params, rng *xrand.RNG) Result {
	p.validate()
	local := LocalAggregate(keys, values)
	defer local.Release()
	n := coll.SumAll(pe, int64(len(keys)))
	mTotal := sumAllFloat(pe, local.Total())
	if mTotal <= 0 {
		return Result{}
	}
	kStar := p.KStarOverride
	if kStar <= 0 {
		kStar = stats.OptimalKStar(n, p.K, pe.P(), p.Eps, p.Delta)
	}
	// The exact-counting pass lets the sample shrink by the factor k*
	// exactly as in Lemma 10; reuse the frequent-objects rate.
	s := stats.SumAggSampleSize(n, pe.P(), p.Eps, p.Delta) / math.Sqrt(float64(kStar))
	if s < float64(4*p.K) {
		s = float64(4 * p.K)
	}
	vavg := mTotal / s

	agg, localSize := sampleAggregated(local, vavg, rng)
	sampleSize := coll.SumAll(pe, localSize)
	shard := dht.CountKV(pe, agg, p.Route)
	candidates := dht.SelectTopKTable(pe, shard, kStar, rng)
	shard.Release()

	// Exact sums by local lookup + vector reduction.
	ids := make([]uint64, len(candidates))
	for i, kv := range candidates {
		ids[i] = kv.Key
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	sums := make([]float64, len(ids))
	for i, id := range ids {
		sums[i], _ = local.Get(id)
	}
	var items []ItemSum
	if len(ids) > 0 {
		global := coll.AllReduce(pe, sums, func(a, b float64) float64 { return a + b })
		items = make([]ItemSum, len(ids))
		for i, id := range ids {
			items[i] = ItemSum{Key: id, Sum: global[i]}
		}
		sort.Slice(items, func(i, j int) bool {
			if items[i].Sum != items[j].Sum {
				return items[i].Sum > items[j].Sum
			}
			return items[i].Key < items[j].Key
		})
		if len(items) > p.K {
			items = items[:p.K]
		}
	}
	return Result{Items: items, SampleSize: sampleSize, VAvg: vavg, Exact: true, KStar: kStar}
}

// ExactTopSums computes the exact answer through the DHT (ground truth
// for tests; not communication-efficient). Collective.
func ExactTopSums(pe *comm.PE, keys []uint64, values []float64, k int, route dht.RouteMode, rng *xrand.RNG) []ItemSum {
	local := LocalAggregate(keys, values)
	defer local.Release()
	// Scale to fixed point so the counting DHT can carry sums. Sorted key
	// order keeps the routed batches deterministic.
	const scale = 1 << 20
	ids := local.SortedKeys(make([]uint64, 0, local.Len()))
	fixed := make([]dht.KV, len(ids))
	for i, key := range ids {
		v, _ := local.Get(key)
		fixed[i] = dht.KV{Key: key, Count: int64(v * scale)}
	}
	shard := dht.CountKV(pe, fixed, route)
	top := dht.SelectTopKTable(pe, shard, k, rng)
	shard.Release()
	items := make([]ItemSum, len(top))
	for i, kv := range top {
		items[i] = ItemSum{Key: kv.Key, Sum: float64(kv.Count) / scale}
	}
	return items
}

func sumAllFloat(pe *comm.PE, v float64) float64 {
	return coll.AllReduceScalar(pe, v, func(a, b float64) float64 { return a + b })
}
