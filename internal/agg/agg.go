// Package agg implements top-k sum aggregation (Section 8 of the paper):
// the input is a multiset of (key, value) pairs with non-negative values,
// and the query asks for the k keys with the largest value sums.
//
// The algorithms carry over from the frequent-objects case with a
// different sampling procedure (Section 8.1): the local input is first
// aggregated per key, and each aggregated value v yields ⌊v/v_avg⌋
// deterministic samples plus one more with probability frac(v/v_avg),
// where v_avg = m/s for total value m and target sample size s. Per key
// and PE the sample count then deviates from its expectation by at most 1,
// which is what the Hoeffding analysis of Theorem 15 needs.
package agg

import (
	"fmt"

	"commtopk/internal/comm"
	"commtopk/internal/dht"
	"commtopk/internal/xrand"
)

// Params configures a top-k sum aggregation query.
type Params struct {
	// K is the number of keys to return.
	K int
	// Eps is the relative error bound (relative to the total sum m).
	Eps float64
	// Delta is the failure probability.
	Delta float64
	// Route selects the DHT insertion routing.
	Route dht.RouteMode
	// KStarOverride fixes the exactly-summed candidate count for ECSum.
	KStarOverride int
}

func (p Params) validate() {
	if p.K < 1 || p.Eps <= 0 || p.Delta <= 0 || p.Delta >= 1 {
		panic(fmt.Sprintf("agg: invalid params %+v", p))
	}
}

// ItemSum is one key with its (estimated or exact) global value sum.
type ItemSum struct {
	Key uint64
	Sum float64
}

// Result is the outcome of a sum-aggregation query; identical on all PEs.
type Result struct {
	// Items are the top-k keys by sum, largest first.
	Items []ItemSum
	// SampleSize is the realized global sample size (in sample units).
	SampleSize int64
	// VAvg is the value mass per sample unit.
	VAvg float64
	// Exact reports whether sums are exact.
	Exact bool
	// KStar is the exactly summed candidate count (ECSum only).
	KStar int
}

// LocalAggregate sums values per key — the first step of Section 8.1 and
// a useful public helper. The result is a pooled dht.SumTable (the last
// query-path structure that was a Go map until PR 4): the caller owns it
// and should Release it when done so steady-state queries stay
// allocation-lean.
func LocalAggregate(keys []uint64, values []float64) *dht.SumTable {
	if len(keys) != len(values) {
		panic("agg: keys/values length mismatch")
	}
	t := dht.NewSumTable(len(keys))
	for i, k := range keys {
		v := values[i]
		if v < 0 {
			panic("agg: negative value")
		}
		t.Add(k, v)
	}
	return t
}

// sampleAggregated converts aggregated values into integer sample counts
// (as KV pairs in ascending key order): floor + Bernoulli residual
// (Section 8.1). Keys are visited in sorted order (dht.SortedKeys) so
// each key's Bernoulli draw is a fixed function of the RNG stream:
// iterating in table (or, before PR 4, Go-map) order would let the
// layout decide which key consumed which deviate, making the sampled
// counts — and hence ECSum's candidate set and realized ε̃ — vary
// between runs with identical seeds (the agg.TestECSumIsExact flake).
// The second result is the realized local sample size.
func sampleAggregated(local *dht.SumTable, vavg float64, rng *xrand.RNG) ([]dht.KV, int64) {
	keys := local.SortedKeys(make([]uint64, 0, local.Len()))
	out := make([]dht.KV, 0, local.Len())
	var total int64
	for _, k := range keys {
		v, _ := local.Get(k)
		q := v / vavg
		c := int64(q)
		if rng.Bernoulli(q - float64(c)) {
			c++
		}
		if c > 0 {
			out = append(out, dht.KV{Key: k, Count: c})
			total += c
		}
	}
	return out, total
}

// PAC computes an (ε, δ)-approximation of the top-k highest-summing keys
// (Theorem 15). Collective. Blocking driver over the same state machine
// PACStep exposes for comm.RunAsync.
func PAC(pe *comm.PE, keys []uint64, values []float64, p Params, rng *xrand.RNG) Result {
	st := newAggStep(pe, keys, values, p, false, rng, nil, false)
	comm.RunSteps(pe, st)
	res := st.res
	st.release(pe)
	return res
}

// ECSum is the exact-summation variant (end of Section 8.2): like PAC,
// but the k* highest-sampled candidates are summed exactly — and unlike
// the frequent-objects case, no second input scan is needed: "a lookup in
// the local aggregation result now suffices". Collective. Blocking
// driver over the ECSumStep state machine.
func ECSum(pe *comm.PE, keys []uint64, values []float64, p Params, rng *xrand.RNG) Result {
	st := newAggStep(pe, keys, values, p, true, rng, nil, false)
	comm.RunSteps(pe, st)
	res := st.res
	st.release(pe)
	return res
}

// ExactTopSums computes the exact answer through the DHT (ground truth
// for tests; not communication-efficient). Collective.
func ExactTopSums(pe *comm.PE, keys []uint64, values []float64, k int, route dht.RouteMode, rng *xrand.RNG) []ItemSum {
	local := LocalAggregate(keys, values)
	defer local.Release()
	// Scale to fixed point so the counting DHT can carry sums. Sorted key
	// order keeps the routed batches deterministic.
	const scale = 1 << 20
	ids := local.SortedKeys(make([]uint64, 0, local.Len()))
	fixed := make([]dht.KV, len(ids))
	for i, key := range ids {
		v, _ := local.Get(key)
		fixed[i] = dht.KV{Key: key, Count: int64(v * scale)}
	}
	shard := dht.CountKV(pe, fixed, route)
	top := dht.SelectTopKTable(pe, shard, k, rng)
	shard.Release()
	items := make([]ItemSum, len(top))
	for i, kv := range top {
		items[i] = ItemSum{Key: kv.Key, Sum: float64(kv.Count) / scale}
	}
	return items
}
