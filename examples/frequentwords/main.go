// Frequent words: the Section 7 pipeline on text-like data, starting with
// the paper's own Figure 4 example (four PEs, 25 letters each, ρ = 0.3,
// k = 5) and then a larger Zipf-distributed "word" stream comparing the
// PAC estimate with EC's exactly counted result.
//
//	go run ./examples/frequentwords
package main

import (
	"fmt"

	"commtopk/internal/comm"
	"commtopk/internal/freq"
	"commtopk/internal/gen"
	"commtopk/internal/stats"
	"commtopk/internal/xrand"
)

// The exact Figure 4 input.
var grids = [4]string{
	"LDENAAAGUTIUOEHHTASSARGMR",
	"EESEAFDOTTITHAILDHMOESULT",
	"TAETSOHDENDGRWEAIEOEHOUOE",
	"EIDSIEPRTDNFEEAHWINTWYIID",
}

func figure4() {
	fmt.Println("— Figure 4: the paper's worked example (4 PEs, 100 letters, k=5) —")
	locals := make([][]uint64, 4)
	exact := map[uint64]int64{}
	for i, g := range grids {
		for _, ch := range g {
			locals[i] = append(locals[i], uint64(ch))
			exact[uint64(ch)]++
		}
	}
	m := comm.NewMachine(comm.DefaultConfig(4))
	var res freq.Result
	m.MustRun(func(pe *comm.PE) {
		// EC with k* = 8, the refinement the paper suggests to make this
		// very example exact ("we may set k* = 8 ... the result would now
		// be correct").
		r := freq.EC(pe, locals[pe.Rank()], freq.Params{
			K: 5, Eps: 0.1, Delta: 0.05, KStarOverride: 8,
		}, xrand.NewPE(3, pe.Rank()))
		if pe.Rank() == 0 {
			res = r
		}
	})
	for i, it := range res.Items {
		fmt.Printf("  %d. %c  count %d (exact %d)\n", i+1, rune(it.Key), it.Count, exact[it.Key])
	}
	keys := make([]uint64, len(res.Items))
	for i, it := range res.Items {
		keys[i] = it.Key
	}
	fmt.Printf("  error ε̃·n = %.0f letters (paper's single PAC draw erred by 1)\n\n",
		stats.EpsTilde(exact, keys, 100)*100)
}

func largeStream() {
	const p = 8
	const perPE = 250_000
	const k = 10
	fmt.Printf("— %d Zipf-distributed words over %d PEs —\n", p*perPE, p)
	z := gen.NewZipf(1<<18, 1)
	locals := make([][]uint64, p)
	exact := map[uint64]int64{}
	for r := 0; r < p; r++ {
		locals[r] = gen.FrequencyInput(xrand.NewPE(17, r), z, perPE)
		for _, x := range locals[r] {
			exact[x]++
		}
	}
	params := freq.Params{K: k, Eps: 1e-3, Delta: 1e-4}
	for _, algo := range []string{"pac", "ec"} {
		m := comm.NewMachine(comm.DefaultConfig(p))
		var res freq.Result
		m.MustRun(func(pe *comm.PE) {
			var r freq.Result
			if algo == "pac" {
				r = freq.PAC(pe, locals[pe.Rank()], params, xrand.NewPE(23, pe.Rank()))
			} else {
				r = freq.EC(pe, locals[pe.Rank()], params, xrand.NewPE(29, pe.Rank()))
			}
			if pe.Rank() == 0 {
				res = r
			}
		})
		keys := make([]uint64, len(res.Items))
		for i, it := range res.Items {
			keys[i] = it.Key
		}
		s := m.Stats()
		fmt.Printf("  %-4s sample %8d  ε̃ = %.2g  exact counts: %-5v  words/PE %d\n",
			algo, res.SampleSize, stats.EpsTilde(exact, keys, int64(p*perPE)), res.Exact, s.BottleneckWords())
	}
}

func main() {
	figure4()
	largeStream()
}
