// Rebalance: Section 9 end-to-end — a top-k selection whose output lands
// unevenly on the PEs (here: all large elements live on two PEs), followed
// by the adaptive redistribution that restores balance while moving only
// the surplus. Compare with the random-reallocation baseline, which moves
// nearly everything.
//
//	go run ./examples/rebalance
package main

import (
	"fmt"

	"commtopk/internal/comm"
	"commtopk/internal/redist"
	"commtopk/internal/sel"
	"commtopk/internal/xrand"
)

func main() {
	const p = 8
	const perPE = 200_000
	const k = 40_000

	// A moderately skewed input: PE r holds a share of the globally
	// largest values proportional to r+1, so the top-k output ramps from
	// light on PE 0 to heavy on PE 7 — the typical mild imbalance that
	// adaptive redistribution fixes cheaply.
	locals := make([][]uint64, p)
	heavyTotal := int64(p) * int64(p+1) / 2
	for r := 0; r < p; r++ {
		rng := xrand.NewPE(5, r)
		locals[r] = make([]uint64, perPE)
		heavy := int(int64(k) * int64(r+1) / heavyTotal)
		for i := range locals[r] {
			if i < heavy {
				locals[r][i] = 1<<40 + rng.Uint64()%(1<<30)
			} else {
				locals[r][i] = rng.Uint64() % (1 << 30)
			}
		}
	}

	m := comm.NewMachine(comm.DefaultConfig(p))
	selected := make([][]uint64, p)
	balanced := make([][]uint64, p)
	var planWords int64
	m.MustRun(func(pe *comm.PE) {
		rng := xrand.NewPE(11, pe.Rank())
		// Select the k largest: rank n-k+1 smallest is the threshold side;
		// SmallestK of the complemented keys gives the top set.
		inv := make([]uint64, len(locals[pe.Rank()]))
		for i, v := range locals[pe.Rank()] {
			inv[i] = ^v
		}
		share := sel.SmallestK(pe, inv, k, rng)
		out := make([]uint64, len(share))
		for i, v := range share {
			out[i] = ^v
		}
		selected[pe.Rank()] = out

		// The paper's point: since every selected element is relevant,
		// redistribution may ignore priorities — any balancing works.
		plan := redist.BuildPlan(pe, int64(len(out)))
		if pe.Rank() == 0 {
			planWords = plan.NBar
		}
		balanced[pe.Rank()] = redist.Apply(pe, out, plan)
	})

	fmt.Printf("top-%d selection over %d PEs (heavy-value share ramps with rank)\n\n", k, p)
	fmt.Println("PE   selected   after balance")
	surplusTotal := 0
	for r := 0; r < p; r++ {
		fmt.Printf("%2d   %8d   %13d\n", r, len(selected[r]), len(balanced[r]))
		if over := len(selected[r]) - int(planWords); over > 0 {
			surplusTotal += over
		}
	}
	s := m.Stats()
	fmt.Printf("\nceiling n̄ = %d; surplus = %d of %d selected (the minimum that must move)\n",
		planWords, surplusTotal, k)
	fmt.Printf("total moved %d words — a random reallocation would move ~%d\n",
		s.TotalWords, k*(p-1)/p)
}
