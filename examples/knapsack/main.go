// Knapsack: distributed best-first branch-and-bound over the
// communication-efficient bulk-parallel priority queue — the Section 5
// application of the paper. Search nodes are inserted into the *local*
// queues for free; every iteration deletes a flexible batch of globally
// best nodes (deleteMin*), expands them where they live, and prunes
// against a shared incumbent.
//
//	go run ./examples/knapsack
package main

import (
	"fmt"

	"commtopk/internal/bnb"
	"commtopk/internal/comm"
)

func main() {
	const p = 8
	const items = 24

	// Strongly correlated items (value = weight + 100): the classical
	// hard family for fractional-bound B&B — thousands of node
	// expansions, so the parallel queue has real work to schedule.
	instance := bnb.StronglyCorrelatedKnapsack(1, items, 1000, 100)
	fmt.Printf("0/1 knapsack (strongly correlated), %d items, %d PEs\n", instance.NumItems(), p)

	// Sequential best-first reference (the paper's m in K = m + O(hp)).
	seqObj, _, _, seqExpanded := bnb.SolveSequential[bnb.KNode](instance)
	fmt.Printf("sequential best-first: value %.0f, %d nodes expanded\n", -seqObj, seqExpanded)

	m := comm.NewMachine(comm.DefaultConfig(p))
	var result bnb.Result[bnb.KNode]
	m.MustRun(func(pe *comm.PE) {
		res := bnb.Solve[bnb.KNode](pe, instance, 99, bnb.Config{})
		if pe.Rank() == 0 {
			result = res
		}
		if res.Found {
			fmt.Printf("optimal packing found by PE %d: value %.0f, weight %d\n",
				pe.Rank(), float64(res.Best.Value), res.Best.Weight)
		}
	})

	fmt.Printf("distributed B&B:      value %.0f, %d nodes expanded in %d deleteMin* rounds\n",
		-result.Objective, result.Expanded, result.Iterations)
	if -result.Objective != -seqObj {
		panic("distributed and sequential optima disagree")
	}
	overhead := float64(result.Expanded-seqExpanded) / float64(max(seqExpanded, 1)) * 100
	fmt.Printf("speculation overhead: %+.1f%% extra expansions (paper: K = m + O(hp))\n", overhead)
	s := m.Stats()
	fmt.Printf("communication: %d words/PE bottleneck — node insertions were free (local queues)\n",
		s.BottleneckWords())
}
