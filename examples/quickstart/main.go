// Quickstart: create a simulated cluster, run the two headline queries —
// top-k smallest (selection) and top-k most frequent — and read the
// communication bill.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"commtopk/internal/core"
	"commtopk/internal/freq"
	"commtopk/internal/xrand"
)

func main() {
	const p = 8       // processing elements (simulated as goroutines)
	const n = 400_000 // global input size
	const k = 10      // output size

	// Generate a skewed global dataset and split it across the PEs.
	rng := xrand.New(42)
	data := make([]uint64, n)
	for i := range data {
		data[i] = uint64(rng.Intn(1000)) * uint64(rng.Intn(1000)) // skewed products
	}

	cluster := core.New(p, core.WithSeed(7))

	// 1. The k globally smallest elements (Section 4.1 of the paper).
	smallest, err := cluster.TopKSmallest(core.Split(data, p), k)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%d smallest elements: %v\n", k, smallest)

	// 2. The k most frequent objects, approximated from a small sample with
	// exact counting of the finalists (Section 7.2).
	cluster.ResetStats()
	res, err := cluster.TopKFrequent(core.Split(data, p), freq.Params{
		K: k, Eps: 0.01, Delta: 0.001,
	}, "ec")
	if err != nil {
		panic(err)
	}
	fmt.Printf("\n%d most frequent objects (sampled %d of %d elements):\n", k, res.SampleSize, n)
	for i, item := range res.Items {
		fmt.Printf("  %2d. value %6d  count %d\n", i+1, item.Key, item.Count)
	}

	// 3. The communication bill: the whole query moved a few kilowords per
	// PE — far below the n/p words a shuffle-based approach would need.
	s := cluster.Stats()
	fmt.Printf("\ncommunication: bottleneck %d words/PE, %d startups/PE (n/p = %d)\n",
		s.BottleneckWords(), s.MaxSends, n/p)
}
