// Search engine: the multicriteria top-k scenario that motivates
// Section 6 of the paper — a disjunctive query with m keywords, a
// per-keyword relevance score for every document, and a monotone overall
// scoring function. Documents are spread over the PEs (each PE indexes
// its own shard, keeping m sorted score lists); the distributed threshold
// algorithm (DTA) finds the k most relevant documents while scanning only
// short prefixes of the lists.
//
//	go run ./examples/searchengine
package main

import (
	"fmt"
	"math"

	"commtopk/internal/comm"
	"commtopk/internal/mtopk"
	"commtopk/internal/xrand"
)

const (
	pes       = 8
	docsPerPE = 50_000
	keywords  = 4 // m criteria
	topK      = 10
)

func main() {
	// Index a synthetic corpus: score j of a document models the BM25-ish
	// relevance of keyword j for it (heavy-tailed: most documents barely
	// match, a few match well).
	shards := make([]*mtopk.Data, pes)
	for r := 0; r < pes; r++ {
		rng := xrand.NewPE(2024, r)
		docs := make([]mtopk.Object, docsPerPE)
		for i := range docs {
			scores := make([]float64, keywords)
			for j := range scores {
				u := rng.Float64()
				scores[j] = math.Pow(u, 8) // heavy tail
			}
			docs[i] = mtopk.Object{ID: uint64(r)<<32 | uint64(i), Scores: scores}
		}
		shards[r] = mtopk.NewData(docs, keywords)
	}

	// The overall relevance: a weighted sum over keywords (monotone).
	weights := []float64{1.0, 0.8, 0.6, 0.4}
	score := func(s []float64) float64 {
		var t float64
		for j, x := range s {
			t += weights[j] * x
		}
		return t
	}

	m := comm.NewMachine(comm.DefaultConfig(pes))
	results := make([][]mtopk.Hit, pes)
	var info mtopk.DTAResult
	m.MustRun(func(pe *comm.PE) {
		hits, res := mtopk.TopK(pe, shards[pe.Rank()], score, topK, xrand.NewPE(7, pe.Rank()))
		results[pe.Rank()] = hits
		if pe.Rank() == 0 {
			info = res
		}
	})

	fmt.Printf("query over %d documents on %d PEs, %d keywords\n", pes*docsPerPE, pes, keywords)
	fmt.Printf("DTA scanned list prefixes of depth K=%d (threshold %.4f, %d rounds)\n\n",
		info.K, info.Threshold, info.Rounds)
	rank := 1
	for r, hits := range results {
		for _, h := range hits {
			fmt.Printf("  doc %d/%d  score %.4f (held by PE %d)\n", h.ID>>32, h.ID&0xffffffff, h.Score, r)
			rank++
		}
	}
	s := m.Stats()
	fmt.Printf("\ncommunication: %d words/PE bottleneck, %d startups (corpus shard = %d docs x %d lists)\n",
		s.BottleneckWords(), s.MaxSends, docsPerPE, keywords)
}
