// Benchmarks regenerating the paper's evaluation (one benchmark family
// per table/figure; see EXPERIMENTS.md for the mapping and recorded
// results). Custom metrics attached to every distributed benchmark:
//
//	words/PE — bottleneck communication volume (max words sent by any PE)
//	start/PE — bottleneck startup count
//
// Wall time per op measures the simulation on the host; the paper-shape
// claims live in the communication metrics and in the relative ordering
// of the algorithm variants.
package commtopk_test

import (
	"fmt"
	"slices"
	"testing"

	"commtopk/internal/agg"
	"commtopk/internal/bnb"
	"commtopk/internal/bpq"
	"commtopk/internal/coll"
	"commtopk/internal/comm"
	"commtopk/internal/dht"
	"commtopk/internal/freq"
	"commtopk/internal/gen"
	"commtopk/internal/mtopk"
	"commtopk/internal/redist"
	"commtopk/internal/sel"
	"commtopk/internal/treap"
	"commtopk/internal/xrand"
)

func reportComm(b *testing.B, m *comm.Machine) {
	s := m.Stats()
	b.ReportMetric(float64(s.BottleneckWords())/float64(b.N), "words/PE")
	b.ReportMetric(float64(s.MaxSends)/float64(b.N), "start/PE")
}

// --------------------------------------------------------------------------
// Figure 6 — weak scaling of unsorted selection
// --------------------------------------------------------------------------

func BenchmarkFig6_UnsortedSelection(b *testing.B) {
	const perPE = 1 << 16
	for _, p := range []int{1, 4, 16, 64} {
		for _, k := range []int64{1 << 10, 1 << 14} {
			name := fmt.Sprintf("p=%d/k=%d", p, k)
			b.Run(name, func(b *testing.B) {
				locals := make([][]uint64, p)
				for r := 0; r < p; r++ {
					locals[r] = gen.SelectionInput(xrand.NewPE(1, r), perPE, 12)
				}
				n := int64(p * perPE)
				m := comm.NewMachine(comm.DefaultConfig(p))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					seed := int64(i)
					m.MustRun(func(pe *comm.PE) {
						sel.Kth(pe, locals[pe.Rank()], n-k+1, xrand.NewPE(seed, pe.Rank()))
					})
				}
				reportComm(b, m)
			})
		}
	}
}

// --------------------------------------------------------------------------
// Figures 7a / 7b / 8 — top-k most frequent objects, four algorithms
// --------------------------------------------------------------------------

func benchFreq(b *testing.B, perPE int, eps, delta float64) {
	algos := []struct {
		name string
		run  func(pe *comm.PE, local []uint64, p freq.Params, rng *xrand.RNG) freq.Result
	}{
		{"PAC", freq.PAC}, {"EC", freq.EC}, {"Naive", freq.Naive}, {"NaiveTree", freq.NaiveTree},
	}
	for _, p := range []int{4, 16} {
		z := gen.NewZipf(1<<14, 1)
		locals := make([][]uint64, p)
		for r := 0; r < p; r++ {
			locals[r] = gen.FrequencyInput(xrand.NewPE(2, r), z, perPE)
		}
		params := freq.Params{K: 32, Eps: eps, Delta: delta}
		for _, a := range algos {
			b.Run(fmt.Sprintf("p=%d/%s", p, a.name), func(b *testing.B) {
				m := comm.NewMachine(comm.DefaultConfig(p))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					seed := int64(i)
					m.MustRun(func(pe *comm.PE) {
						a.run(pe, locals[pe.Rank()], params, xrand.NewPE(seed, pe.Rank()))
					})
				}
				reportComm(b, m)
			})
		}
	}
}

func BenchmarkFig7a_TopKFrequent(b *testing.B) { benchFreq(b, 1<<14, 0.02, 1e-4) }

func BenchmarkFig7b_TopKFrequent(b *testing.B) { benchFreq(b, 1<<16, 0.02, 1e-4) }

// Figure 8: accuracy strict enough that only EC can still sample.
func BenchmarkFig8_TopKFrequentStrict(b *testing.B) { benchFreq(b, 1<<16, 1e-4, 1e-8) }

// --------------------------------------------------------------------------
// Table 1 — one benchmark per problem at a representative configuration
// --------------------------------------------------------------------------

func BenchmarkTable1_UnsortedSelection(b *testing.B) {
	const p, perPE = 16, 1 << 16
	locals := make([][]uint64, p)
	for r := 0; r < p; r++ {
		locals[r] = gen.SelectionInput(xrand.NewPE(3, r), perPE, 12)
	}
	m := comm.NewMachine(comm.DefaultConfig(p))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seed := int64(i)
		m.MustRun(func(pe *comm.PE) {
			sel.Kth(pe, locals[pe.Rank()], int64(p*perPE/2), xrand.NewPE(seed, pe.Rank()))
		})
	}
	reportComm(b, m)
}

func BenchmarkTable1_UnsortedSelectionOldRandomized(b *testing.B) {
	const p, perPE = 16, 1 << 16
	locals := make([][]uint64, p)
	for r := 0; r < p; r++ {
		locals[r] = gen.SelectionInput(xrand.NewPE(3, r), perPE, 12)
	}
	m := comm.NewMachine(comm.DefaultConfig(p))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seed := int64(i)
		m.MustRun(func(pe *comm.PE) {
			sel.KthRandomized(pe, locals[pe.Rank()], int64(p*perPE/2), xrand.NewPE(seed, pe.Rank()))
		})
	}
	reportComm(b, m)
}

func sortedLocalsBench(seed int64, p, perPE int) [][]uint64 {
	locals := make([][]uint64, p)
	for r := 0; r < p; r++ {
		rng := xrand.NewPE(seed, r)
		l := make([]uint64, perPE)
		for i := range l {
			l[i] = rng.Uint64()<<32 | uint64(r)<<24 | uint64(i)&0xffffff
		}
		slices.Sort(l)
		locals[r] = l
	}
	return locals
}

func BenchmarkTable1_SortedSelectionExact(b *testing.B) {
	const p, perPE = 16, 1 << 10
	locals := sortedLocalsBench(4, p, perPE)
	m := comm.NewMachine(comm.DefaultConfig(p))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MustRun(func(pe *comm.PE) {
			shared := xrand.New(int64(i))
			sel.MSSelect[uint64](pe, sel.SliceSeq[uint64](locals[pe.Rank()]), int64(p*perPE/2), shared)
		})
	}
	reportComm(b, m)
}

func BenchmarkTable1_SortedSelectionFlexible(b *testing.B) {
	const p, perPE = 16, 1 << 10
	locals := sortedLocalsBench(5, p, perPE)
	k := int64(p * perPE / 2)
	m := comm.NewMachine(comm.DefaultConfig(p))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seed := int64(i)
		m.MustRun(func(pe *comm.PE) {
			sel.AMSSelect[uint64](pe, sel.SliceSeq[uint64](locals[pe.Rank()]), k, 2*k, xrand.NewPE(seed, pe.Rank()))
		})
	}
	reportComm(b, m)
}

func BenchmarkTable1_BulkPQ(b *testing.B) {
	const p, perPE = 16, 1 << 12
	locals := sortedLocalsBench(6, p, perPE)
	m := comm.NewMachine(comm.DefaultConfig(p))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seed := int64(i)
		m.MustRun(func(pe *comm.PE) {
			q := bpq.New[uint64](pe, seed)
			q.InsertBulk(locals[pe.Rank()])
			q.DeleteMin(1 << 10)
		})
	}
	reportComm(b, m)
}

func BenchmarkTable1_SumAggregation(b *testing.B) {
	const p, perPE = 16, 1 << 14
	z := gen.NewZipf(1<<12, 1)
	keys := make([][]uint64, p)
	vals := make([][]float64, p)
	for r := 0; r < p; r++ {
		keys[r], vals[r] = gen.WeightedInput(xrand.NewPE(7, r), z, perPE)
	}
	params := agg.Params{K: 32, Eps: 0.02, Delta: 1e-4}
	m := comm.NewMachine(comm.DefaultConfig(p))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seed := int64(i)
		m.MustRun(func(pe *comm.PE) {
			agg.PAC(pe, keys[pe.Rank()], vals[pe.Rank()], params, xrand.NewPE(seed, pe.Rank()))
		})
	}
	reportComm(b, m)
}

func BenchmarkTable1_MulticriteriaDTA(b *testing.B) {
	const p, perPE, mCrit = 8, 1 << 12, 4
	datas := make([]*mtopk.Data, p)
	for r := 0; r < p; r++ {
		datas[r] = mtopk.NewData(mtopk.GenObjects(xrand.NewPE(8, r), perPE, mCrit, uint64(r)<<40), mCrit)
	}
	m := comm.NewMachine(comm.DefaultConfig(p))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seed := int64(i)
		m.MustRun(func(pe *comm.PE) {
			mtopk.DTA(pe, datas[pe.Rank()], mtopk.SumScore, 16, xrand.NewPE(seed, pe.Rank()))
		})
	}
	reportComm(b, m)
}

func BenchmarkTable1_BranchAndBound(b *testing.B) {
	const p = 8
	instance := bnb.StronglyCorrelatedKnapsack(1, 20, 1000, 100)
	m := comm.NewMachine(comm.DefaultConfig(p))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seed := int64(i)
		m.MustRun(func(pe *comm.PE) {
			bnb.Solve[bnb.KNode](pe, instance, seed, bnb.Config{})
		})
	}
	reportComm(b, m)
}

// --------------------------------------------------------------------------
// Ablations
// --------------------------------------------------------------------------

func BenchmarkAblation_AMSBatch(b *testing.B) {
	const p, perPE = 8, 1 << 12
	locals := sortedLocalsBench(9, p, perPE)
	kmin := int64(p * perPE / 2)
	kmax := kmin + int64(p*perPE/256)
	for _, d := range []int{1, 8, 32} {
		b.Run(fmt.Sprintf("d=%d", d), func(b *testing.B) {
			m := comm.NewMachine(comm.DefaultConfig(p))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				seed := int64(i)
				m.MustRun(func(pe *comm.PE) {
					sel.AMSSelectBatched[uint64](pe, sel.SliceSeq[uint64](locals[pe.Rank()]), kmin, kmax, d, xrand.NewPE(seed, pe.Rank()))
				})
			}
			reportComm(b, m)
		})
	}
}

func BenchmarkAblation_PQFlexible(b *testing.B) {
	const p, perPE = 8, 1 << 12
	locals := sortedLocalsBench(10, p, perPE)
	for _, flexible := range []bool{false, true} {
		name := "exact"
		if flexible {
			name = "flexible"
		}
		b.Run(name, func(b *testing.B) {
			m := comm.NewMachine(comm.DefaultConfig(p))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				seed := int64(i)
				m.MustRun(func(pe *comm.PE) {
					q := bpq.New[uint64](pe, seed)
					q.InsertBulk(locals[pe.Rank()])
					if flexible {
						q.DeleteMinFlexible(512, 1024)
					} else {
						q.DeleteMin(512)
					}
				})
			}
			reportComm(b, m)
		})
	}
}

func BenchmarkAblation_DHTRouting(b *testing.B) {
	const p, distinct = 16, 2048
	for _, mode := range []dht.RouteMode{dht.RouteDirect, dht.RouteHypercube} {
		name := "direct"
		if mode == dht.RouteHypercube {
			name = "hypercube"
		}
		b.Run(name, func(b *testing.B) {
			m := comm.NewMachine(comm.DefaultConfig(p))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.MustRun(func(pe *comm.PE) {
					local := make(map[uint64]int64, distinct)
					for k := 0; k < distinct; k++ {
						local[uint64(k)] = int64(pe.Rank() + 1)
					}
					dht.CountKeys(pe, local, mode)
				})
			}
			reportComm(b, m)
		})
	}
}

func BenchmarkAblation_Redistribution(b *testing.B) {
	const p, perPE = 16, 1 << 12
	counts := make([]int64, p)
	for i := range counts {
		counts[i] = perPE
	}
	counts[0] += 3 * p // slight imbalance
	for _, naive := range []bool{false, true} {
		name := "adaptive"
		if naive {
			name = "naive"
		}
		b.Run(name, func(b *testing.B) {
			m := comm.NewMachine(comm.DefaultConfig(p))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				seed := int64(i)
				m.MustRun(func(pe *comm.PE) {
					local := make([]uint64, counts[pe.Rank()])
					if naive {
						redist.NaiveExchange(pe, local, xrand.NewPE(seed, pe.Rank()))
					} else {
						redist.Balance(pe, local)
					}
				})
			}
			reportComm(b, m)
		})
	}
}

// --------------------------------------------------------------------------
// Substrate micro-benchmarks
// --------------------------------------------------------------------------

func BenchmarkSubstrate_Collectives(b *testing.B) {
	const p = 64
	ops := []struct {
		name string
		body func(pe *comm.PE)
	}{
		{"Broadcast", func(pe *comm.PE) { coll.Broadcast(pe, 0, []int64{1, 2, 3, 4}) }},
		{"AllReduce", func(pe *comm.PE) {
			coll.AllReduce(pe, []int64{int64(pe.Rank())}, func(a, b int64) int64 { return a + b })
		}},
		{"ExScan", func(pe *comm.PE) { coll.ExScanSum(pe, int64(pe.Rank())) }},
		{"AllGather", func(pe *comm.PE) { coll.AllGatherConcat(pe, []int64{int64(pe.Rank())}) }},
	}
	for _, op := range ops {
		b.Run(op.name, func(b *testing.B) {
			m := comm.NewMachine(comm.DefaultConfig(p))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.MustRun(op.body)
			}
			reportComm(b, m)
		})
	}
}

// BenchmarkSubstrate_MailboxScale exercises the mailbox backend at a PE
// count the channel matrix cannot reach (p = 1024 would need ~2.6 GiB of
// channel buffers; the mailbox machine is ~0.3 MB and holds w, not p,
// resident goroutines). CI runs this as the mailbox bench smoke with
// -benchtime=1x.
func BenchmarkSubstrate_MailboxScale(b *testing.B) {
	const p = 1024
	m := comm.NewMachine(comm.MailboxConfig(p))
	defer m.Close()
	body := func(pe *comm.PE) {
		coll.Broadcast(pe, 0, []int64{1, 2, 3, 4})
		coll.AllReduceScalar(pe, int64(pe.Rank()), func(a, b int64) int64 { return a + b })
		coll.ExScanSum(pe, int64(pe.Rank()))
		coll.Barrier(pe)
	}
	m.MustRun(body) // spawn the scheduler workers outside the timing
	m.ResetStats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MustRun(body)
	}
	reportComm(b, m)
}

func BenchmarkSubstrate_TreapOps(b *testing.B) {
	const n = 1 << 16
	tr := treap.New[uint64](1)
	rng := xrand.New(2)
	for i := 0; i < n; i++ {
		tr.Insert(rng.Uint64())
	}
	b.Run("Insert+Delete", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			v := rng.Uint64()
			tr.Insert(v)
			tr.Delete(v)
		}
	})
	b.Run("Select", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tr.Select(i % tr.Len())
		}
	})
	b.Run("Rank", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tr.Rank(rng.Uint64())
		}
	})
}

func BenchmarkSubstrate_Sampling(b *testing.B) {
	rng := xrand.New(3)
	b.Run("Geometric", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rng.Geometric(0.001)
		}
	})
	z := gen.NewZipf(1<<20, 1)
	b.Run("ZipfDraw", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			z.Draw(rng)
		}
	})
	b.Run("NegBinomial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rng.NegBinomial(1000, 0.05)
		}
	})
}
