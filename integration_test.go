// Integration tests: end-to-end pipelines combining several of the
// paper's algorithms on one simulated cluster, the way a downstream
// application would.
package commtopk_test

import (
	"slices"
	"testing"

	"commtopk/internal/agg"
	"commtopk/internal/bnb"
	"commtopk/internal/bpq"
	"commtopk/internal/comm"
	"commtopk/internal/core"
	"commtopk/internal/freq"
	"commtopk/internal/gen"
	"commtopk/internal/mtopk"
	"commtopk/internal/redist"
	"commtopk/internal/sel"
	"commtopk/internal/stats"
	"commtopk/internal/xrand"
)

// TestPipelineSelectThenRebalance selects the top-k of a skewed input and
// rebalances the (necessarily skewed) output — the Section 9 story.
func TestPipelineSelectThenRebalance(t *testing.T) {
	const p = 8
	const perPE = 10000
	const k = 4000
	locals := make([][]uint64, p)
	for r := 0; r < p; r++ {
		rng := xrand.NewPE(1, r)
		locals[r] = make([]uint64, perPE)
		base := uint64(0)
		if r == 3 {
			base = 1 << 40 // all heavy values on one PE
		}
		for i := range locals[r] {
			locals[r][i] = base + uint64(rng.Uint64()%(1<<30))
		}
	}
	m := comm.NewMachine(comm.DefaultConfig(p))
	balancedLens := make([]int, p)
	var totalSelected int
	m.MustRun(func(pe *comm.PE) {
		rng := xrand.NewPE(2, pe.Rank())
		inv := make([]uint64, perPE)
		for i, v := range locals[pe.Rank()] {
			inv[i] = ^v
		}
		share := sel.SmallestK(pe, inv, k, rng) // top-k largest via complement
		balanced := redist.Balance(pe, share)
		balancedLens[pe.Rank()] = len(balanced)
		if pe.Rank() == 0 {
			totalSelected = k
		}
	})
	nBar := (totalSelected + p - 1) / p
	for r, l := range balancedLens {
		if l > nBar {
			t.Errorf("PE %d holds %d > n̄=%d after rebalance", r, l, nBar)
		}
	}
}

// TestPipelinePQDrivenSelection feeds the output of frequent-object
// detection into a bulk priority queue and drains it in order.
func TestPipelinePQDrivenSelection(t *testing.T) {
	const p = 4
	z := gen.NewZipf(1<<10, 1)
	locals := make([][]uint64, p)
	exact := map[uint64]int64{}
	for r := 0; r < p; r++ {
		locals[r] = gen.FrequencyInput(xrand.NewPE(3, r), z, 20000)
		for _, x := range locals[r] {
			exact[x]++
		}
	}
	m := comm.NewMachine(comm.DefaultConfig(p))
	var drained []uint64
	m.MustRun(func(pe *comm.PE) {
		rng := xrand.NewPE(4, pe.Rank())
		res := freq.EC(pe, locals[pe.Rank()], freq.Params{K: 16, Eps: 0.01, Delta: 0.01}, rng)
		// Rank the winners through the PQ by ascending count (composing a
		// unique key from count and object id).
		q := bpq.New[uint64](pe, 5)
		if pe.Rank() == 0 { // owner-computes: one PE holds the result set
			for _, it := range res.Items {
				q.Insert(uint64(it.Count)<<20 | it.Key&0xfffff)
			}
		}
		for {
			batch := q.DeleteMin(4)
			if pe.Rank() == 0 {
				drained = append(drained, batch...)
			}
			// Termination must hinge on a global quantity only (every PE
			// enters the same collectives — SPMD discipline).
			if q.GlobalLen() == 0 {
				break
			}
		}
	})
	if len(drained) != 16 {
		t.Fatalf("drained %d items", len(drained))
	}
	if !slices.IsSorted(drained) {
		t.Error("PQ drain not in ascending count order")
	}
}

// TestPipelineMulticriteriaThenAggregate runs a multicriteria query and
// then sum-aggregates the winners' scores by a grouping key.
func TestPipelineMulticriteriaThenAggregate(t *testing.T) {
	const p = 4
	const perPE = 500
	datas := make([]*mtopk.Data, p)
	var all []mtopk.Object
	for r := 0; r < p; r++ {
		objs := mtopk.GenObjects(xrand.NewPE(6, r), perPE, 3, uint64(r)<<32)
		datas[r] = mtopk.NewData(objs, 3)
		all = append(all, objs...)
	}
	want := mtopk.BruteForceTopK(mtopk.NewData(all, 3), mtopk.SumScore, 20)
	wantIDs := map[uint64]bool{}
	for _, h := range want {
		wantIDs[h.ID] = true
	}
	m := comm.NewMachine(comm.DefaultConfig(p))
	var got agg.Result
	m.MustRun(func(pe *comm.PE) {
		rng := xrand.NewPE(7, pe.Rank())
		hits, _ := mtopk.TopK(pe, datas[pe.Rank()], mtopk.SumScore, 20, rng)
		// Group the winners by their home PE (id high bits) and aggregate
		// their scores.
		keys := make([]uint64, len(hits))
		vals := make([]float64, len(hits))
		for i, h := range hits {
			keys[i] = h.ID >> 32
			vals[i] = h.Score
		}
		r := agg.ECSum(pe, keys, vals, agg.Params{K: p, Eps: 0.05, Delta: 0.05}, rng)
		if pe.Rank() == 0 {
			got = r
		}
	})
	if len(got.Items) == 0 {
		t.Fatal("aggregation returned nothing")
	}
	var sum float64
	for _, it := range got.Items {
		sum += it.Sum
	}
	var wantSum float64
	for _, h := range want {
		wantSum += h.Score
	}
	if sum < wantSum*0.99 || sum > wantSum*1.01 {
		t.Errorf("aggregated winner mass %v, want %v", sum, wantSum)
	}
}

// TestPipelineBnBUsesSelectionInternals solves knapsack on the cluster and
// cross-checks the result against DP, then verifies insert locality.
func TestPipelineBnBUsesSelectionInternals(t *testing.T) {
	const p = 4
	inst := bnb.StronglyCorrelatedKnapsack(2, 18, 200, 50)
	want := -float64(inst.OptimalByDP())
	m := comm.NewMachine(comm.DefaultConfig(p))
	m.MustRun(func(pe *comm.PE) {
		res := bnb.Solve[bnb.KNode](pe, inst, 3, bnb.Config{})
		if res.Objective != want {
			t.Errorf("objective %v, want %v", res.Objective, want)
		}
	})
	// Communication must be per-round reductions only, far below the
	// expansion count × node size.
	if w := m.Stats().BottleneckWords(); w > 50000 {
		t.Errorf("B&B moved %d words; queue is supposed to keep nodes local", w)
	}
}

// TestClusterFacadeEndToEnd drives everything through the public façade.
func TestClusterFacadeEndToEnd(t *testing.T) {
	const p = 4
	rng := xrand.New(8)
	data := make([]uint64, 40000)
	for i := range data {
		data[i] = uint64(rng.Intn(2000))
	}
	exact := stats.Count(data)

	c := core.New(p, core.WithSeed(9))
	small, err := c.TopKSmallest(core.Split(data, p), 25)
	if err != nil || len(small) != 25 {
		t.Fatalf("TopKSmallest: %v len=%d", err, len(small))
	}
	res, err := c.TopKFrequent(core.Split(data, p), freq.Params{K: 5, Eps: 0.02, Delta: 0.01}, "pac")
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]uint64, len(res.Items))
	for i, it := range res.Items {
		keys[i] = it.Key
	}
	if e := stats.EpsTilde(exact, keys, int64(len(data))); e > 0.02 {
		t.Errorf("façade PAC error %v", e)
	}
	balanced, err := c.BalanceLoad(core.Split(data, p))
	if err != nil {
		t.Fatal(err)
	}
	var total int
	for _, b := range balanced {
		total += len(b)
	}
	if total != len(data) {
		t.Errorf("balance lost elements: %d", total)
	}
}

// TestRepeatedQueriesOnOneMachine runs many different collectives-heavy
// queries back-to-back on a single machine — the tag-sequencing and
// reuse regression test.
func TestRepeatedQueriesOnOneMachine(t *testing.T) {
	const p = 6
	z := gen.NewZipf(1<<8, 1)
	locals := make([][]uint64, p)
	for r := 0; r < p; r++ {
		locals[r] = gen.FrequencyInput(xrand.NewPE(10, r), z, 5000)
	}
	m := comm.NewMachine(comm.DefaultConfig(p))
	for round := 0; round < 5; round++ {
		seed := int64(round)
		m.MustRun(func(pe *comm.PE) {
			rng := xrand.NewPE(seed, pe.Rank())
			sel.Kth(pe, locals[pe.Rank()], int64(p*5000/2), rng)
			freq.PAC(pe, locals[pe.Rank()], freq.Params{K: 4, Eps: 0.05, Delta: 0.05}, rng)
			redist.Balance(pe, locals[pe.Rank()])
		})
	}
}
